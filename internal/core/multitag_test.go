package core

import (
	"testing"

	"backfi/internal/tag"
)

func TestMultiTagAddressedTagOnlyWakes(t *testing.T) {
	cfg := DefaultLinkConfig(1)
	cfg.Seed = 3
	m, err := NewMultiTagLink(cfg, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for addressed := 0; addressed < 3; addressed++ {
		payload := []byte{byte(addressed), 1, 2, 3, 4, 5, 6, 7}
		res, err := m.RunPacket(addressed, payload)
		if err != nil {
			t.Fatal(err)
		}
		for i, woke := range res.Woke {
			if i == addressed && !woke {
				t.Fatalf("addressed tag %d did not wake", i)
			}
			if i != addressed && woke {
				t.Fatalf("tag %d woke on tag %d's sequence", i, addressed)
			}
		}
		if !res.Result.PayloadOK {
			t.Fatalf("addressed tag %d failed to deliver", addressed)
		}
	}
}

func TestMultiTagImpostorCollides(t *testing.T) {
	// Two tags with the SAME ID (same wake sequence, same PN) at
	// similar ranges: both wake on the poll and their reflections
	// superpose, so decoding should be much worse than the clean case.
	cfg := DefaultLinkConfig(1)
	cfg.Seed = 4
	clean, err := NewMultiTagLink(cfg, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	collided, err := NewMultiTagLink(cfg, []float64{1, 1.2})
	if err != nil {
		t.Fatal(err)
	}
	// Force the impostor to share the wake sequence and PN (ID 0).
	impostorCfg := cfg.Tag
	impostorCfg.ID = 0
	impostor, err := tag.New(impostorCfg)
	if err != nil {
		t.Fatal(err)
	}
	collided.Tags[1] = impostor

	payload := make([]byte, 48)
	okClean, okCollided := 0, 0
	snrClean, snrCollided := 0.0, 0.0
	const trials = 5
	for i := 0; i < trials; i++ {
		cfg.Seed = 100 + int64(i)
		c1, _ := NewMultiTagLink(cfg, []float64{1})
		r1, err := c1.RunPacket(0, payload)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Result.PayloadOK {
			okClean++
		}
		snrClean += r1.Result.MeasuredSNRdB

		c2, _ := NewMultiTagLink(cfg, []float64{1, 1.2})
		c2.Tags[1] = impostor
		r2, err := c2.RunPacket(0, payload)
		if err != nil {
			t.Fatal(err)
		}
		if !r2.Woke[1] {
			t.Fatal("impostor with matching sequence should wake")
		}
		if r2.Result.PayloadOK {
			okCollided++
		}
		snrCollided += r2.Result.MeasuredSNRdB
	}
	if okClean < 4 {
		t.Fatalf("clean deployment only %d/%d", okClean, trials)
	}
	if snrCollided >= snrClean-3 {
		t.Fatalf("collision should cost SNR: %v vs %v", snrCollided/trials, snrClean/trials)
	}
	_ = clean
	_ = collided
}

func TestMultiTagValidation(t *testing.T) {
	if _, err := NewMultiTagLink(DefaultLinkConfig(1), nil); err == nil {
		t.Fatal("expected error for no tags")
	}
	m, err := NewMultiTagLink(DefaultLinkConfig(1), []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunPacket(5, nil); err == nil {
		t.Fatal("expected index error")
	}
}
