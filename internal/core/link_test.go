package core

import (
	"bytes"
	"math"
	"testing"

	"backfi/internal/channel"
	"backfi/internal/fec"
	"backfi/internal/tag"
)

func TestEndToEndDefaultLink(t *testing.T) {
	cfg := DefaultLinkConfig(1)
	cfg.Seed = 7
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payload := link.RandomPayload(120)
	res, err := link.RunPacket(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PayloadOK {
		t.Fatal("default link at 1 m should decode")
	}
	if !bytes.Equal(res.Decode.Payload, payload) {
		t.Fatal("decoded payload differs")
	}
	if res.RawBER() > 0.01 {
		t.Fatalf("raw BER %v too high at 1 m", res.RawBER())
	}
	if res.Decode.PreambleCorr < 0.9 {
		t.Fatalf("preamble correlation %v", res.Decode.PreambleCorr)
	}
}

func TestEndToEndAllModulations(t *testing.T) {
	for _, mod := range tag.Modulations {
		for _, coding := range []fec.CodeRate{fec.Rate12, fec.Rate23} {
			cfg := DefaultLinkConfig(0.5)
			cfg.Tag.Mod = mod
			cfg.Tag.Coding = coding
			cfg.Seed = 11
			link, err := NewLink(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := link.RunPacket(link.RandomPayload(60))
			if err != nil {
				t.Fatalf("%v/%v: %v", mod, coding, err)
			}
			if !res.PayloadOK {
				t.Fatalf("%v/%v should decode at 0.5 m", mod, coding)
			}
		}
	}
}

func TestEndToEndSymbolRates(t *testing.T) {
	// Every standard symbol rate that divides 20 MHz must work at
	// close range (lower rates get more MRC gain).
	for _, rs := range []float64{100e3, 500e3, 1e6, 2e6, 2.5e6} {
		cfg := DefaultLinkConfig(1)
		cfg.Tag.SymbolRateHz = rs
		cfg.Seed = 13
		link, err := NewLink(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := 40
		if rs < 5e5 {
			n = 8 // keep low-rate excitations short
		}
		res, err := link.RunPacket(link.RandomPayload(n))
		if err != nil {
			t.Fatalf("rs=%v: %v", rs, err)
		}
		if !res.PayloadOK {
			t.Fatalf("rs=%v should decode at 1 m", rs)
		}
	}
}

func TestMRCGainImprovesSNRAtLowerSymbolRate(t *testing.T) {
	// Paper Fig. 11b: lower symbol rate → more samples combined →
	// higher post-MRC SNR. Compare at 4 m where thermal noise matters.
	measure := func(rs float64) float64 {
		var sum float64
		const reps = 5
		for i := 0; i < reps; i++ {
			cfg := DefaultLinkConfig(4)
			cfg.Tag.SymbolRateHz = rs
			cfg.Seed = 100 + int64(i)
			link, err := NewLink(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := link.RunPacket(link.RandomPayload(24))
			if err != nil {
				t.Fatal(err)
			}
			sum += res.MeasuredSNRdB
		}
		return sum / reps
	}
	fast := measure(2.5e6)
	slow := measure(500e3)
	if slow <= fast+3 {
		t.Fatalf("MRC gain missing: %.1f dB at 500k vs %.1f dB at 2.5M", slow, fast)
	}
}

func TestSNRDegradationVsOracleIsSmall(t *testing.T) {
	// Paper Fig. 11a: measured post-MRC SNR within a few dB of the
	// oracle expectation.
	var degr []float64
	for i := 0; i < 8; i++ {
		cfg := DefaultLinkConfig(2)
		cfg.Seed = 200 + int64(i)
		link, err := NewLink(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := link.RunPacket(link.RandomPayload(60))
		if err != nil {
			t.Fatal(err)
		}
		degr = append(degr, res.ExpectedMRCSNRdB-res.MeasuredSNRdB)
	}
	// Median degradation should be positive and bounded: the paper
	// attributes ≈2.3 dB to cancellation residue alone; our chain adds
	// channel-estimation and TX-distortion losses on top.
	med := median(degr)
	if med < 0 || med > 12 {
		t.Fatalf("median SNR degradation %v dB", med)
	}
}

func median(v []float64) float64 {
	s := append([]float64{}, v...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func TestThroughputDecreasesWithRange(t *testing.T) {
	// The headline shape: max decodable throughput is non-increasing
	// with distance and spans the paper's claimed envelope.
	cfgs := []tag.Config{
		{Mod: tag.PSK16, Coding: fec.Rate23, SymbolRateHz: 2.5e6, PreambleChips: 32, ID: 1},
		{Mod: tag.PSK16, Coding: fec.Rate12, SymbolRateHz: 2.5e6, PreambleChips: 32, ID: 1},
		{Mod: tag.QPSK, Coding: fec.Rate23, SymbolRateHz: 2.5e6, PreambleChips: 32, ID: 1},
		{Mod: tag.QPSK, Coding: fec.Rate12, SymbolRateHz: 1e6, PreambleChips: 32, ID: 1},
		{Mod: tag.BPSK, Coding: fec.Rate12, SymbolRateHz: 1e6, PreambleChips: 32, ID: 1},
	}
	prev := math.Inf(1)
	bests := map[float64]float64{}
	for _, d := range []float64{0.5, 2, 5} {
		var results []Feasibility
		for i, c := range cfgs {
			f, err := Evaluate(channel.DefaultConfig(d), c, DefaultLinkConfig(d).Reader, 5, 24, 900+int64(i))
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, f)
		}
		best, ok := BestThroughput(results)
		if !ok {
			t.Fatalf("nothing decodes at %v m", d)
		}
		if best.ThroughputBps > prev {
			t.Fatalf("throughput increased with distance at %v m", d)
		}
		prev = best.ThroughputBps
		bests[d] = best.ThroughputBps
	}
	if bests[0.5] < 5e6 {
		t.Fatalf("close-range throughput %v, want ≥ 5 Mbps", bests[0.5])
	}
	if bests[5] < 0.5e6 {
		t.Fatalf("5 m throughput %v, want ≥ 0.5 Mbps", bests[5])
	}
}

func TestLinkConfigValidation(t *testing.T) {
	cfg := DefaultLinkConfig(1)
	cfg.WiFiMbps = 7
	if _, err := NewLink(cfg); err == nil {
		t.Fatal("expected error for invalid WiFi rate")
	}
	cfg = DefaultLinkConfig(1)
	cfg.WiFiPSDUBytes = 0
	if _, err := NewLink(cfg); err == nil {
		t.Fatal("expected error for zero PSDU size")
	}
	cfg = DefaultLinkConfig(1)
	cfg.Tag.SymbolRateHz = 0
	if _, err := NewLink(cfg); err == nil {
		t.Fatal("expected error for invalid tag config")
	}
}

func TestExcitationAutoSizing(t *testing.T) {
	// A large payload at a low symbol rate must stretch the excitation
	// over multiple PPDUs.
	cfg := DefaultLinkConfig(0.5)
	cfg.Tag.SymbolRateHz = 100e3
	cfg.Seed = 5
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := link.RunPacket(link.RandomPayload(100))
	if err != nil {
		t.Fatal(err)
	}
	oneppdu := 12000 // ≈ a 1500-byte 24 Mbps PPDU in samples
	if res.ExcitationSamples <= oneppdu {
		t.Fatalf("excitation %d samples should exceed one PPDU", res.ExcitationSamples)
	}
	if !res.PayloadOK {
		t.Fatal("multi-PPDU excitation should still decode")
	}
}

func TestEvaluateAndDecodable(t *testing.T) {
	tc := tag.Config{Mod: tag.QPSK, Coding: fec.Rate12, SymbolRateHz: 1e6, PreambleChips: 32, ID: 1}
	f, err := Evaluate(channel.DefaultConfig(1), tc, DefaultLinkConfig(1).Reader, 5, 24, 31)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Decodable() {
		t.Fatalf("QPSK 1/2 @1M at 1 m should be decodable (%.2f)", f.SuccessRate)
	}
	if f.ThroughputBps != 1e6 {
		t.Fatalf("throughput %v", f.ThroughputBps)
	}
	if f.REPB <= 0 {
		t.Fatalf("REPB %v", f.REPB)
	}
	if _, err := Evaluate(channel.DefaultConfig(1), tc, DefaultLinkConfig(1).Reader, 0, 24, 31); err == nil {
		t.Fatal("expected error for zero trials")
	}
}

func TestStandardConfigsEnumeration(t *testing.T) {
	cfgs := StandardConfigs(32, 3)
	if len(cfgs) != 36 {
		t.Fatalf("%d configs, want 36", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		if c.PreambleChips != 32 || c.ID != 3 {
			t.Fatalf("config fields not propagated: %+v", c)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if seen[c.String()] {
			t.Fatalf("duplicate config %v", c)
		}
		seen[c.String()] = true
	}
}

func TestSelectionHelpers(t *testing.T) {
	mk := func(bps, repb, succ float64) Feasibility {
		return Feasibility{SuccessRate: succ, ThroughputBps: bps, REPB: repb}
	}
	results := []Feasibility{
		mk(1e6, 1.3, 1.0),
		mk(1e6, 1.0, 1.0),   // same throughput, cheaper
		mk(5e6, 2.7, 1.0),   // fastest decodable
		mk(6.7e6, 1.9, 0.5), // fast but not decodable
	}
	best, ok := BestThroughput(results)
	if !ok || best.ThroughputBps != 5e6 {
		t.Fatalf("BestThroughput = %+v", best)
	}
	cheap, ok := MinREPBAtThroughput(results, 1e6)
	if !ok || cheap.REPB != 1.0 {
		t.Fatalf("MinREPBAtThroughput = %+v", cheap)
	}
	if _, ok := MinREPBAtThroughput(results, 10e6); ok {
		t.Fatal("nothing should achieve 10 Mbps")
	}
	pareto := ParetoREPB(results)
	if len(pareto) != 2 {
		t.Fatalf("pareto size %d", len(pareto))
	}
	if pareto[0].ThroughputBps != 1e6 || pareto[0].REPB != 1.0 {
		t.Fatalf("pareto[0] = %+v", pareto[0])
	}
	if pareto[1].ThroughputBps != 5e6 {
		t.Fatalf("pareto[1] = %+v", pareto[1])
	}
	if _, ok := BestThroughput(nil); ok {
		t.Fatal("empty results should not find a best")
	}
}

func TestExtendedPreambleImprovesEdge(t *testing.T) {
	// Paper Fig. 8: at the range edge (7 m), the 96 µs preamble gives a
	// better channel estimate and hence equal or higher decodable
	// throughput than 32 µs.
	run := func(chips int) float64 {
		tc := tag.Config{Mod: tag.BPSK, Coding: fec.Rate12, SymbolRateHz: 1e6, PreambleChips: chips, ID: 1}
		f, err := Evaluate(channel.DefaultConfig(7), tc, DefaultLinkConfig(7).Reader, 6, 16, 55)
		if err != nil {
			t.Fatal(err)
		}
		return f.SuccessRate
	}
	short := run(tag.DefaultPreambleChips)
	long := run(tag.ExtendedPreambleChips)
	if long < short {
		t.Fatalf("96 µs preamble success %.2f below 32 µs %.2f at 7 m", long, short)
	}
}
