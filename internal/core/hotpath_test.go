package core

import (
	"bytes"
	"testing"

	"backfi/internal/fault"
	"backfi/internal/fec"
	"backfi/internal/tag"
)

func hotLinkConfig(seed int64) LinkConfig {
	cfg := DefaultLinkConfig(1)
	cfg.Seed = seed
	cfg.SessionCache = true
	return cfg
}

func TestSessionCacheDeliversFrames(t *testing.T) {
	s, err := NewSession(hotLinkConfig(101), 0.95, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		payload := s.Link().RandomPayload(24)
		res, ok, err := s.Send(payload)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !ok || !res.PayloadOK || !bytes.Equal(res.Decode.Payload, payload) {
			t.Fatalf("frame %d not delivered on the hot path", i)
		}
	}
	if s.Stats.FramesDelivered != 10 {
		t.Fatalf("delivered %d/10 frames", s.Stats.FramesDelivered)
	}
}

func TestSessionCacheDeterministic(t *testing.T) {
	run := func() []*PacketResult {
		s, err := NewSession(hotLinkConfig(102), 0.95, 2)
		if err != nil {
			t.Fatal(err)
		}
		var out []*PacketResult
		for i := 0; i < 6; i++ {
			res, _, err := s.Send(s.Link().RandomPayload(24))
			if err != nil {
				t.Fatal(err)
			}
			// A frame whose every ARQ attempt hit a wake failure yields a
			// nil result; determinism then requires the other run to agree.
			if res != nil {
				// Copy scratch-backed slices before the next frame reuses
				// them.
				res.Decode.SymbolEstimates = append([]complex128(nil), res.Decode.SymbolEstimates...)
			}
			out = append(out, res)
		}
		return out
	}
	a, b := run(), run()
	delivered := 0
	for i := range a {
		if (a[i] == nil) != (b[i] == nil) {
			t.Fatalf("frame %d: delivery outcome differs across identical runs", i)
		}
		if a[i] == nil {
			continue
		}
		delivered++
		if !bytes.Equal(a[i].Decode.Payload, b[i].Decode.Payload) {
			t.Fatalf("frame %d: payloads differ across identical runs", i)
		}
		if a[i].MeasuredSNRdB != b[i].MeasuredSNRdB || a[i].RawBitErrors != b[i].RawBitErrors {
			t.Fatalf("frame %d: diagnostics differ across identical runs", i)
		}
		if len(a[i].Decode.SymbolEstimates) != len(b[i].Decode.SymbolEstimates) {
			t.Fatalf("frame %d: estimate counts differ", i)
		}
		for j := range a[i].Decode.SymbolEstimates {
			if a[i].Decode.SymbolEstimates[j] != b[i].Decode.SymbolEstimates[j] {
				t.Fatalf("frame %d symbol %d not bit-identical", i, j)
			}
		}
	}
	if delivered == 0 {
		t.Fatal("no frame delivered; seed gives the test nothing to compare")
	}
}

func TestSessionCacheInvalidatedByTagConfig(t *testing.T) {
	s, err := NewSession(hotLinkConfig(103), 0.95, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Send(s.Link().RandomPayload(24)); err != nil || !ok {
		t.Fatalf("initial frame: ok=%v err=%v", ok, err)
	}
	fast := tag.Config{Mod: tag.PSK16, Coding: fec.Rate23, SymbolRateHz: 2.5e6, PreambleChips: tag.DefaultPreambleChips, ID: 1}
	if err := s.SetTagConfig(fast); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		payload := s.Link().RandomPayload(24)
		res, ok, err := s.Send(payload)
		if err != nil {
			t.Fatalf("post-switch frame %d: %v", i, err)
		}
		if !ok || !bytes.Equal(res.Decode.Payload, payload) {
			t.Fatalf("post-switch frame %d not delivered", i)
		}
	}
}

func TestSessionCacheFaultProfileForcesLegacyPath(t *testing.T) {
	cfg := hotLinkConfig(104)
	cfg.Faults = &fault.Profile{ACKDropProb: 0.5}
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := link.RunPacket(link.RandomPayload(24)); err != nil {
		t.Fatal(err)
	}
	if link.hot != nil {
		t.Fatal("faulted link must not build hot-path state")
	}
	// Clearing the profile re-enables the hot path on the same link.
	if err := link.SetFaultProfile(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := link.RunPacket(link.RandomPayload(24)); err != nil {
		t.Fatal(err)
	}
	if link.hot == nil {
		t.Fatal("unfaulted link should use the session cache")
	}
}

func TestSessionCacheOffKeepsLegacyPath(t *testing.T) {
	cfg := hotLinkConfig(105)
	cfg.SessionCache = false
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := link.RunPacket(link.RandomPayload(24)); err != nil {
		t.Fatal(err)
	}
	if link.hot != nil {
		t.Fatal("SessionCache=false must never touch hot-path state")
	}
}

func BenchmarkRunPacketSessionCache(b *testing.B) {
	link, err := NewLink(hotLinkConfig(106))
	if err != nil {
		b.Fatal(err)
	}
	payload := link.RandomPayload(24)
	if _, err := link.RunPacket(payload); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := link.RunPacket(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunPacketSessionCacheFastTag(b *testing.B) {
	cfg := hotLinkConfig(107)
	cfg.Tag = tag.Config{Mod: tag.PSK16, Coding: fec.Rate23, SymbolRateHz: 2.5e6, PreambleChips: tag.DefaultPreambleChips, ID: 1}
	link, err := NewLink(cfg)
	if err != nil {
		b.Fatal(err)
	}
	payload := link.RandomPayload(24)
	if _, err := link.RunPacket(payload); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := link.RunPacket(payload); err != nil {
			b.Fatal(err)
		}
	}
}
