package core

import (
	"fmt"

	"backfi/internal/dsp"
	"backfi/internal/reader"
	"backfi/internal/tag"
	"backfi/internal/wifi"
)

// hotState is the per-link session cache behind LinkConfig.SessionCache:
// the realized excitation (ideal and distorted copies), the streaming
// decoder with its SIC/channel-estimate scratch, and the per-frame
// signal buffers. One hotState serves one Link; links are never shared
// across goroutines (the serve layer gives each session its own).
type hotState struct {
	stream *reader.Stream

	// Cached excitation, rebuilt only when the key below changes. The
	// MSDU contents are drawn from the link RNG once at build — the
	// paper's tag never reads the excitation payload, so replaying one
	// realized WiFi burst per configuration is the whole point of the
	// cache.
	x           []complex128 // ideal baseband (CTS + wake + PPDUs)
	xAir        []complex128 // with transmit distortion applied
	packetStart int
	nppdu       int
	psduBytes   int
	tagCfg      tag.Config

	// Per-frame scratch, windowed to the samples actually processed.
	z    []complex128 // forward signal at the tag
	refl []complex128 // backscatter reflection z·m
	bs   []complex128 // reflection through h_b
	y    []complex128 // AP receive buffer
}

// hotWindowSlack extends the processing window past the frame's nominal
// extent so the decoder's timing search (±TimingSearch samples) and the
// MRC grid never read outside computed samples.
const hotWindowSlack = 64

// runPacketHot is RunPacket on the session-cache fast path: identical
// protocol semantics (wake gate, modulation plan, ground-truth
// accounting) with three structural changes — the excitation is cached
// per configuration instead of rebuilt per frame, every channel/noise
// operation is windowed to the frame's samples, and decoding goes
// through the link's reader.Stream. Deterministic for a fixed (seed,
// call sequence); not bit-identical to the legacy path because the RNG
// draw schedule differs (excitation bytes once per cache build, noise
// only over the window).
func (l *Link) runPacketHot(payload []byte) (*PacketResult, error) {
	l.m.packets.Inc()
	tcfg := l.Tag.Cfg

	need := tag.SilentSamples + tcfg.PreambleSamples() +
		tag.SymbolsForPayload(len(payload), tcfg.Coding, tcfg.Mod)*tcfg.SamplesPerSymbol()
	ppduLen := wifi.PPDULen(l.Cfg.WiFiPSDUBytes, l.rate)
	nppdu := (need + ppduLen - 1) / ppduLen
	if nppdu < 1 {
		nppdu = 1
	}

	h := l.hot
	if h == nil || h.nppdu != nppdu || h.psduBytes != l.Cfg.WiFiPSDUBytes || h.tagCfg != tcfg {
		l.m.cacheMiss.Inc()
		var err error
		if h, err = l.rebuildHot(nppdu); err != nil {
			return nil, err
		}
	} else {
		l.m.cacheHit.Inc()
	}
	x, xAir, packetStart := h.x, h.xAir, h.packetStart
	packetLen := len(x) - packetStart

	// Processing window: everything past hi is untouched this frame.
	hi := packetStart + need + tcfg.SamplesPerSymbol() + hotWindowSlack
	if hi > len(x) {
		hi = len(x)
	}

	tspChan := l.trace.Start("channel_sim")
	spChan := l.m.spanChannelSim.Start()

	// Tag side: forward channel over the window (the wake detector also
	// needs the CTS/wake prefix), then wake detection with the same
	// gates as the legacy path.
	h.z = dsp.ConvolveRangeInto(h.z, xAir, l.Scenario.HF, 0, hi)
	wakeIdx, ok := l.Tag.TryWake(h.z[:packetStart+tag.SilentSamples])
	if !ok {
		l.m.failWake.Inc()
		return nil, fmt.Errorf("%w at %.2g m", ErrTagNoWake, l.Cfg.Channel.DistanceM)
	}
	if d := wakeIdx - packetStart; d < -tag.WakeBitSamples || d > tag.WakeBitSamples {
		l.m.failWakeTiming.Inc()
		return nil, fmt.Errorf("%w: wake timing off by %d samples", ErrTagNoWake, d)
	}

	m, plan, err := l.Tag.ModulationSequence(packetLen, payload)
	if err != nil {
		return nil, err
	}

	// Reflection z·m and backward channel, over the window only. The
	// reflection buffer is zeroed across the whole window so the h_b
	// convolution's look-back reads defined samples.
	if cap(h.refl) < len(x) {
		h.refl = make([]complex128, len(x))
	}
	h.refl = h.refl[:len(x)]
	for n := 0; n < hi; n++ {
		h.refl[n] = 0
	}
	for n := packetStart; n < hi && n-packetStart < len(m); n++ {
		h.refl[n] = h.z[n] * m[n-packetStart]
	}
	h.bs = dsp.ConvolveRangeInto(h.bs, h.refl, l.Scenario.HB, packetStart, hi)

	// AP receive over the window: self-interference + backscatter +
	// thermal noise (drawn only for the window's samples).
	h.y = dsp.ConvolveRangeInto(h.y, xAir, l.Scenario.HEnv, packetStart, hi)
	for n := packetStart; n < hi; n++ {
		h.y[n] += h.bs[n]
	}
	l.Scenario.Noise.AddInPlaceRange(h.y, packetStart, hi)
	spChan.End()
	tspChan.End()

	// Decode sees the window as the packet: available symbols are
	// bounded by hi, which covers the frame plus timing slack.
	tspDec := l.trace.Start("decode_total")
	spDec := l.m.spanDecode.Start()
	res, err := h.stream.Decode(x, xAir, h.y, packetStart, hi-packetStart, tcfg)
	spDec.End()
	tspDec.End()
	if err != nil {
		return nil, err
	}

	pr := &PacketResult{
		Decode:            res,
		Sent:              payload,
		ExcitationSamples: packetLen,
		TagAirtimeSec:     float64(plan.End()-plan.SilentEnd) / tag.SampleRate,
		ExpectedSNRdB:     l.Scenario.ExpectedSNRdB(),
		MeasuredSNRdB:     res.SNRdB,
	}
	pr.liftDiagnostics(res)
	sps := tcfg.SamplesPerSymbol()
	guard := l.Cfg.Reader.ChannelTaps
	if guard > sps/2 {
		guard = sps / 2
	}
	floorW := dsp.UnDBm(pr.SICResidualDBm)
	pr.ExpectedMRCSNRdB = dsp.SNRdB(l.Scenario.BackscatterRxPowerW(), floorW) + dsp.DB(float64(sps-guard))
	pr.PayloadOK = res.FrameOK && bytesEqual(res.Payload, payload)
	pr.Delivered = pr.PayloadOK

	hard := tcfg.Mod.DemapHard(res.SymbolEstimates[:min(len(plan.Symbols), len(res.SymbolEstimates))])
	for i, b := range plan.CodedBits[:min(len(plan.CodedBits), len(hard))] {
		if hard[i] != b {
			pr.RawBitErrors++
		}
		pr.RawBits++
	}
	l.observeResult(pr)
	return pr, nil
}

// rebuildHot (re)builds the cached excitation for the current tag and
// packet configuration, keeping the stream decoder (and its trained
// scratch capacity) across rebuilds.
//
// In migratable mode the build's RNG draws (MSDU bytes, transmit
// distortion) run under a temporary seed derived from the cache key
// alone, and the attempt stream is re-pinned afterwards — so the
// cached waveform is identical no matter *which* attempt ordinal
// triggered the rebuild, and the attempt's own noise draws start from
// the same stream position whether or not this frame rebuilt. Both
// properties are load-bearing for byte-identical handoff resume
// (DESIGN.md §5j): the surviving node rebuilds its cache on the first
// resumed frame, an ordinal the original node built at long before.
func (l *Link) rebuildHot(nppdu int) (*hotState, error) {
	if l.Cfg.Migratable {
		l.rng.Seed(l.cacheSeed(nppdu))
	}
	tspExc := l.trace.Start("excitation_build")
	spExc := l.m.spanExcitation.Start()
	x, packetStart, err := buildExcitation(l.rng, l.rate, l.Cfg.WiFiPSDUBytes, l.Scenario.TxPowerW(), l.Tag, nppdu)
	spExc.End()
	tspExc.End()
	if err != nil {
		return nil, err
	}
	if l.hot == nil {
		stream, err := l.rdr.NewStream()
		if err != nil {
			return nil, err
		}
		l.hot = &hotState{stream: stream}
	}
	h := l.hot
	h.x = x
	h.xAir = l.Scenario.Distortion.Apply(x)
	h.packetStart = packetStart
	h.nppdu = nppdu
	h.psduBytes = l.Cfg.WiFiPSDUBytes
	h.tagCfg = l.Tag.Cfg
	if l.Cfg.Migratable {
		l.rng.Seed(attemptSeed(l.Cfg.Seed, l.curAttempt))
	}
	return h, nil
}

// cacheSeed derives the migratable-mode excitation-build seed from the
// cache key (tag configuration + packet sizing) and the link seed —
// never from the attempt ordinal.
func (l *Link) cacheSeed(nppdu int) int64 {
	h := uint64(14695981039346656037) // FNV-1a 64 offset basis
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= 0xff // field separator
		h *= 1099511628211
	}
	mix(fmt.Sprintf("%+v", l.Tag.Cfg))
	mix(fmt.Sprintf("%d/%d", nppdu, l.Cfg.WiFiPSDUBytes))
	return attemptSeed(l.Cfg.Seed^int64(h), 0)
}
