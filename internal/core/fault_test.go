package core

import (
	"reflect"
	"testing"

	"backfi/internal/channel"
	"backfi/internal/fault"
)

// TestNilFaultsMatchesZeroProfile pins the hardening contract's
// backward-compatibility edge: a LinkConfig with Faults == nil and one
// with an all-zero (disabled) profile must produce byte-identical
// packet results — enabling the subsystem without enabling any
// impairment is a no-op.
func TestNilFaultsMatchesZeroProfile(t *testing.T) {
	run := func(p *fault.Profile) *PacketResult {
		cfg := DefaultLinkConfig(2)
		cfg.Seed = 42
		cfg.Faults = p
		link, err := NewLink(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := link.RunPacket(link.RandomPayload(48))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	nilRes := run(nil)
	zeroRes := run(&fault.Profile{})
	if !reflect.DeepEqual(nilRes, zeroRes) {
		t.Fatalf("zero fault profile perturbed the link:\nnil:  %+v\nzero: %+v", nilRes, zeroRes)
	}
}

// TestEvaluateFaultsBitIdenticalAcrossWorkers extends the PR 1
// determinism contract to impaired links: with a fixed nonzero
// profile, the Monte-Carlo summary must not depend on the worker
// count, because each trial's injector derives from the trial seed.
func TestEvaluateFaultsBitIdenticalAcrossWorkers(t *testing.T) {
	base := DefaultLinkConfig(1)
	p := fault.Standard(0.6)
	var got []Feasibility
	for _, workers := range []int{1, 8} {
		f, err := EvaluateFaults(channel.DefaultConfig(1), base.Tag, base.Reader, &p, 8, 24, 5, workers)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, f)
	}
	if !reflect.DeepEqual(got[0], got[1]) {
		t.Fatalf("impaired evaluation depends on workers:\n1: %+v\n8: %+v", got[0], got[1])
	}
}

// TestFaultsChangeOutcome is the other direction of the no-op test: a
// severe profile must actually perturb the receive chain (otherwise
// the injection hooks are dead code).
func TestFaultsChangeOutcome(t *testing.T) {
	run := func(p *fault.Profile) *PacketResult {
		cfg := DefaultLinkConfig(2)
		cfg.Seed = 42
		cfg.Faults = p
		link, err := NewLink(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := link.RunPacket(link.RandomPayload(48))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(nil)
	p := fault.Standard(1)
	hostile := run(&p)
	if reflect.DeepEqual(clean, hostile) {
		t.Fatal("severity-1 profile left the packet result untouched")
	}
	if hostile.MeasuredSNRdB >= clean.MeasuredSNRdB {
		t.Fatalf("hostile front end should cost SNR: %v dB vs clean %v dB",
			hostile.MeasuredSNRdB, clean.MeasuredSNRdB)
	}
}
