// Package tag implements the BackFi IoT sensor: the n-PSK backscatter
// reflection modulator built from an SPDT switch tree, the low-power
// envelope-detector wake-up receiver, tag-side convolutional encoding,
// packet framing, and the link-layer timing of paper Fig. 4
// (detection 16 µs → silent 16 µs → preamble 32 µs → payload).
package tag

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Modulation is the tag's reflection constellation: the paper's
// BPSK/QPSK/16PSK switch-tree orders, plus the 16-QAM alternative the
// paper compares against (see qam.go).
type Modulation int

const (
	// BPSK: 1 bit/symbol, one SPDT switch.
	BPSK Modulation = iota
	// QPSK: 2 bits/symbol, three SPDT switches.
	QPSK
	// PSK16: 4 bits/symbol, fifteen SPDT switches.
	PSK16
)

// Modulations lists the paper's PSK orders (the Fig. 7 set).
var Modulations = []Modulation{BPSK, QPSK, PSK16}

// AllModulations additionally includes the 16-QAM extension.
var AllModulations = []Modulation{BPSK, QPSK, PSK16, QAM16}

// Validate reports whether m is one of the defined constellations.
// Constellation lookups (BitsPerSymbol, Map, …) treat an unknown order
// as an internal invariant violation and panic, so config paths must
// validate first.
func (m Modulation) Validate() error {
	switch m {
	case BPSK, QPSK, PSK16, QAM16:
		return nil
	}
	return fmt.Errorf("tag: unknown modulation %d", int(m))
}

// BitsPerSymbol returns the information bits carried per tag symbol.
func (m Modulation) BitsPerSymbol() int {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case PSK16, QAM16:
		return 4
	}
	panic("tag: unknown modulation")
}

// Points returns the constellation size.
func (m Modulation) Points() int { return 1 << uint(m.BitsPerSymbol()) }

// SwitchCount returns the number of SPDT switches in the phase-selector
// tree of paper Fig. 3: a full binary tree with Points−1 internal
// nodes. The QAM16 modulator ([49]-style) needs the same selector tree
// plus attenuation states and is charged the same count.
func (m Modulation) SwitchCount() int { return m.Points() - 1 }

// String names the modulation.
func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case PSK16:
		return "16PSK"
	case QAM16:
		return "16QAM"
	}
	return fmt.Sprintf("Modulation(%d)", int(m))
}

// grayEncode returns the Gray code of v.
func grayEncode(v int) int { return v ^ (v >> 1) }

// Phase returns the reflected phase (radians) selected by symbol index
// s in [0, Points): the trace lengths at the tree leaves are cut for
// equally spaced phases. It is defined only for the PSK orders.
func (m Modulation) Phase(s int) float64 {
	if m == QAM16 {
		panic("tag: QAM16 states are not phase-only")
	}
	n := m.Points()
	if s < 0 || s >= n {
		panic(fmt.Sprintf("tag: symbol %d out of range for %s", s, m))
	}
	return 2 * math.Pi * float64(s) / float64(n)
}

// MapBits converts a bit slice into constellation phasors e^{jθ} using
// Gray labeling, so adjacent phases differ in one bit. len(bits) must be
// a multiple of BitsPerSymbol.
func (m Modulation) MapBits(bits []byte) []complex128 {
	if m == QAM16 {
		return qam16Map(bits)
	}
	k := m.BitsPerSymbol()
	if len(bits)%k != 0 {
		panic("tag: bit count not a multiple of bits per symbol")
	}
	out := make([]complex128, len(bits)/k)
	for i := range out {
		v := 0
		for j := 0; j < k; j++ {
			v = v<<1 | int(bits[i*k+j])
		}
		s, c := math.Sincos(m.Phase(grayIndex(m, v)))
		out[i] = complex(c, s)
	}
	return out
}

// grayIndex maps a bit label value to its constellation position such
// that neighbors differ by one bit: position p carries label gray(p),
// so label v sits at gray^{-1}(v).
func grayIndex(m Modulation, v int) int {
	n := m.Points()
	for p := 0; p < n; p++ {
		if grayEncode(p) == v {
			return p
		}
	}
	panic("tag: unreachable")
}

// DemapSoft converts received phasor estimates into per-bit soft values
// (+ → bit 0) with the max-log approximation over the PSK
// constellation, weighted by the estimate magnitudes (MRC confidence).
func (m Modulation) DemapSoft(points []complex128) []float64 {
	if m == QAM16 {
		return qam16DemapSoft(points)
	}
	k := m.BitsPerSymbol()
	n := m.Points()
	// Precompute constellation with labels.
	type entry struct {
		pt    complex128
		label int
	}
	table := make([]entry, n)
	for p := 0; p < n; p++ {
		s, c := math.Sincos(m.Phase(p))
		table[p] = entry{complex(c, s), grayEncode(p)}
	}
	out := make([]float64, len(points)*k)
	for pi, y := range points {
		mag := cmplx.Abs(y)
		var u complex128
		if mag > 0 {
			u = y / complex(mag, 0)
		}
		for bit := 0; bit < k; bit++ {
			d0, d1 := math.Inf(1), math.Inf(1)
			for _, e := range table {
				dr := real(u) - real(e.pt)
				di := imag(u) - imag(e.pt)
				d := dr*dr + di*di
				if (e.label>>(uint(k-1-bit)))&1 == 0 {
					if d < d0 {
						d0 = d
					}
				} else if d < d1 {
					d1 = d
				}
			}
			out[pi*k+bit] = (d1 - d0) * mag
		}
	}
	return out
}

// DemapHard slices phasors to bit labels.
func (m Modulation) DemapHard(points []complex128) []byte {
	if m == QAM16 {
		return qam16DemapHard(points)
	}
	k := m.BitsPerSymbol()
	n := m.Points()
	out := make([]byte, 0, len(points)*k)
	for _, y := range points {
		// Nearest phase: quantize the angle.
		theta := cmplx.Phase(y)
		if theta < 0 {
			theta += 2 * math.Pi
		}
		p := int(math.Round(theta/(2*math.Pi)*float64(n))) % n
		label := grayEncode(p)
		for j := k - 1; j >= 0; j-- {
			out = append(out, byte(label>>uint(j))&1)
		}
	}
	return out
}
