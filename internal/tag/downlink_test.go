package tag

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"backfi/internal/dsp"
)

func TestDownlinkRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 8, 100} {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		wave, err := EncodeDownlink(payload, math.Sqrt(dsp.UnDBm(-20)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeDownlink(wave, dsp.UnDBm(-41))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("n=%d: payload differs", n)
		}
	}
}

func TestDownlinkRate(t *testing.T) {
	// One OOK bit is 50 µs → 20 kbps raw, matching the paper's
	// "similar throughputs of 20 Kbps" (Sec. 5.2.1).
	if DownlinkBitSamples != 1000 {
		t.Fatalf("bit period %d samples", DownlinkBitSamples)
	}
	if DownlinkRateBps != 20e3 {
		t.Fatalf("rate %v", DownlinkRateBps)
	}
}

func TestDownlinkRejectsWeakSignal(t *testing.T) {
	wave, err := EncodeDownlink([]byte{1, 2, 3}, math.Sqrt(dsp.UnDBm(-70)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDownlink(wave, dsp.UnDBm(-41)); err == nil {
		t.Fatal("expected sensitivity failure")
	}
}

func TestDownlinkDetectsCorruption(t *testing.T) {
	wave, err := EncodeDownlink([]byte{9, 9, 9, 9}, math.Sqrt(dsp.UnDBm(-20)))
	if err != nil {
		t.Fatal(err)
	}
	// Invert one payload bit period (both Manchester halves so the
	// decode still parses but the CRC fails).
	start := (len(downlinkPreamble) + 2*8 + 4) * DownlinkBitSamples
	for k := 0; k < 2*DownlinkBitSamples; k++ {
		if wave[start+k] == 0 {
			wave[start+k] = wave[0] // borrow the on-amplitude
		} else {
			wave[start+k] = 0
		}
	}
	if _, err := DecodeDownlink(wave, dsp.UnDBm(-41)); err == nil {
		t.Fatal("expected CRC or framing failure")
	}
}

func TestDownlinkWithOffsetAndNoiseFloor(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	payload := []byte("set-rate qpsk 1MHz")
	wave, err := EncodeDownlink(payload, math.Sqrt(dsp.UnDBm(-25)))
	if err != nil {
		t.Fatal(err)
	}
	// Prepend idle silence and append noise-like residue well below the
	// signal.
	rx := dsp.Concat(dsp.Zeros(3*DownlinkBitSamples), wave, dsp.Zeros(2*DownlinkBitSamples))
	sigma := math.Sqrt(dsp.UnDBm(-60) / 2)
	for i := range rx {
		rx[i] += complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
	}
	got, err := DecodeDownlink(rx, dsp.UnDBm(-41))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload differs under offset+noise")
	}
}

func TestDownlinkOversizePayload(t *testing.T) {
	if _, err := EncodeDownlink(make([]byte, 256), 1); err == nil {
		t.Fatal("expected error for oversized payload")
	}
}

func TestDownlinkTooShortStream(t *testing.T) {
	if _, err := DecodeDownlink(dsp.Zeros(100), 0); err == nil {
		t.Fatal("expected error for short stream")
	}
}

func TestDownlinkNoPreamble(t *testing.T) {
	// A constant-on carrier has no preamble pattern.
	rx := make([]complex128, 30*DownlinkBitSamples)
	for i := range rx {
		rx[i] = 1
	}
	if _, err := DecodeDownlink(rx, 0); err == nil {
		t.Fatal("expected preamble-not-found")
	}
}
