package tag

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randomBits(r *rand.Rand, n int) []byte {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(r.Intn(2))
	}
	return bits
}

func TestModulationBasics(t *testing.T) {
	cases := []struct {
		m        Modulation
		bits     int
		points   int
		switches int
		name     string
	}{
		{BPSK, 1, 2, 1, "BPSK"},
		{QPSK, 2, 4, 3, "QPSK"},
		{PSK16, 4, 16, 15, "16PSK"},
	}
	for _, c := range cases {
		if c.m.BitsPerSymbol() != c.bits {
			t.Fatalf("%s bits = %d", c.name, c.m.BitsPerSymbol())
		}
		if c.m.Points() != c.points {
			t.Fatalf("%s points = %d", c.name, c.m.Points())
		}
		if c.m.SwitchCount() != c.switches {
			t.Fatalf("%s switches = %d, want %d (paper Fig. 3)", c.name, c.m.SwitchCount(), c.switches)
		}
		if c.m.String() != c.name {
			t.Fatalf("String = %q", c.m.String())
		}
	}
}

func TestPhasesEquallySpacedUnitMagnitude(t *testing.T) {
	for _, m := range Modulations {
		n := m.Points()
		for s := 0; s < n; s++ {
			want := 2 * math.Pi * float64(s) / float64(n)
			if got := m.Phase(s); math.Abs(got-want) > 1e-12 {
				t.Fatalf("%s phase(%d) = %v", m, s, got)
			}
		}
	}
}

func TestPhaseOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	QPSK.Phase(4)
}

func TestMapDemapHardRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, m := range Modulations {
		bits := randomBits(r, m.BitsPerSymbol()*200)
		pts := m.MapBits(bits)
		for _, p := range pts {
			if math.Abs(cmplx.Abs(p)-1) > 1e-12 {
				t.Fatalf("%s: point magnitude %v", m, cmplx.Abs(p))
			}
		}
		got := m.DemapHard(pts)
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("%s: bit %d differs", m, i)
			}
		}
	}
}

func TestGrayLabelingAdjacentPhases(t *testing.T) {
	// Adjacent constellation phases must differ in exactly one bit.
	for _, m := range Modulations {
		if m == BPSK {
			continue
		}
		n := m.Points()
		for p := 0; p < n; p++ {
			a := grayEncode(p)
			b := grayEncode((p + 1) % n)
			diff := 0
			for x := a ^ b; x != 0; x >>= 1 {
				diff += x & 1
			}
			if diff != 1 {
				t.Fatalf("%s: positions %d,%d labels differ in %d bits", m, p, p+1, diff)
			}
		}
	}
}

func TestDemapHardRobustToSmallPhaseError(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, m := range Modulations {
		maxErr := math.Pi / float64(m.Points()) * 0.8
		bits := randomBits(r, m.BitsPerSymbol()*100)
		pts := m.MapBits(bits)
		for i := range pts {
			rot := (r.Float64()*2 - 1) * maxErr
			pts[i] *= complex(math.Cos(rot), math.Sin(rot))
			// Random amplitude shouldn't matter for PSK.
			pts[i] *= complex(0.1+r.Float64()*3, 0)
		}
		got := m.DemapHard(pts)
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("%s: bit %d flipped by sub-decision-boundary error", m, i)
			}
		}
	}
}

func TestDemapSoftSigns(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, m := range Modulations {
		bits := randomBits(r, m.BitsPerSymbol()*64)
		soft := m.DemapSoft(m.MapBits(bits))
		for i, b := range bits {
			if b == 0 && soft[i] <= 0 || b == 1 && soft[i] >= 0 {
				t.Fatalf("%s: bit %d=%d but soft %v", m, i, b, soft[i])
			}
		}
	}
}

func TestDemapSoftMagnitudeWeighting(t *testing.T) {
	// A low-confidence (small magnitude) symbol must produce smaller
	// soft values than a high-confidence one.
	pts := QPSK.MapBits([]byte{0, 0, 0, 0})
	pts[0] *= complex(0.1, 0)
	pts[1] *= complex(10, 0)
	soft := QPSK.DemapSoft(pts)
	if math.Abs(soft[0]) >= math.Abs(soft[2]) {
		t.Fatalf("weak symbol soft %v not below strong %v", soft[0], soft[2])
	}
}

func TestDemapSoftZeroPoint(t *testing.T) {
	soft := QPSK.DemapSoft([]complex128{0})
	for _, s := range soft {
		if s != 0 {
			t.Fatalf("zero point should give zero soft values, got %v", soft)
		}
	}
}

func TestMapBitsBadLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PSK16.MapBits([]byte{1, 0, 1})
}
