package tag

import (
	"math"
	"math/cmplx"
)

// 16-QAM backscatter (the [49]-style modulator the paper declined):
// the tag varies both the phase and the magnitude of its reflection
// coefficient. Physics caps |Γ| at 1, so the constellation is
// normalized to unit *peak* amplitude — which is exactly why the paper
// chose n-PSK: QAM's inner points reflect less energy ("the least
// amount of RF signal degradation", Sec. 5.2), costing ≈2.6 dB of
// average reflected power before any slicing penalty.

// QAM16 extends the Modulation set with 16-QAM reflection states.
const QAM16 Modulation = PSK16 + 1

// qam16Points holds the Gray-labeled constellation at unit peak
// amplitude; index = labeled value (b0b1b2b3, b0 first).
var qam16Points = buildQAM16()

func buildQAM16() [16]complex128 {
	// Standard 16-QAM with axis levels {-3,-1,1,3}, Gray-coded per
	// axis, then scaled so the corner magnitude (|±3±3j|) is 1.
	axis := func(b0, b1 byte) float64 {
		switch b0<<1 | b1 {
		case 0b00:
			return -3
		case 0b01:
			return -1
		case 0b11:
			return 1
		default:
			return 3
		}
	}
	scale := 1 / math.Sqrt(18) // |3+3j| = √18
	var pts [16]complex128
	for v := 0; v < 16; v++ {
		b := [4]byte{byte(v >> 3 & 1), byte(v >> 2 & 1), byte(v >> 1 & 1), byte(v & 1)}
		pts[v] = complex(axis(b[0], b[1])*scale, axis(b[2], b[3])*scale)
	}
	return pts
}

// QAM16AveragePower returns the mean |Γ|² of the peak-normalized
// constellation — the reflected-energy penalty vs PSK's 1.0.
func QAM16AveragePower() float64 {
	var p float64
	for _, pt := range qam16Points {
		p += real(pt)*real(pt) + imag(pt)*imag(pt)
	}
	return p / 16
}

// qam16Map converts bits (multiples of 4) to reflection states.
func qam16Map(bits []byte) []complex128 {
	if len(bits)%4 != 0 {
		panic("tag: QAM16 bit count not a multiple of 4")
	}
	out := make([]complex128, len(bits)/4)
	for i := range out {
		v := int(bits[4*i])<<3 | int(bits[4*i+1])<<2 | int(bits[4*i+2])<<1 | int(bits[4*i+3])
		out[i] = qam16Points[v]
	}
	return out
}

// qam16DemapHard slices points to bit labels by nearest constellation
// point (amplitude matters, unlike PSK).
func qam16DemapHard(points []complex128) []byte {
	out := make([]byte, 0, len(points)*4)
	for _, y := range points {
		best := math.Inf(1)
		bi := 0
		for v, pt := range qam16Points {
			if d := sqAbs(y - pt); d < best {
				best, bi = d, v
			}
		}
		out = append(out, byte(bi>>3&1), byte(bi>>2&1), byte(bi>>1&1), byte(bi&1))
	}
	return out
}

// qam16DemapSoft computes max-log per-bit soft values, scaled by the
// point magnitude like the PSK demapper.
func qam16DemapSoft(points []complex128) []float64 {
	out := make([]float64, len(points)*4)
	for pi, y := range points {
		mag := cmplx.Abs(y)
		for bit := 0; bit < 4; bit++ {
			d0, d1 := math.Inf(1), math.Inf(1)
			for v, pt := range qam16Points {
				d := sqAbs(y - pt)
				if v>>(3-bit)&1 == 0 {
					if d < d0 {
						d0 = d
					}
				} else if d < d1 {
					d1 = d
				}
			}
			out[pi*4+bit] = (d1 - d0) * (1 + mag)
		}
	}
	return out
}

func sqAbs(v complex128) float64 { return real(v)*real(v) + imag(v)*imag(v) }
