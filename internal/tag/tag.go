package tag

import (
	"fmt"
	"math/rand"

	"backfi/internal/fec"
)

// Link-layer timing of paper Fig. 4, in 20 MHz samples.
const (
	// SampleRate is the baseband rate the tag timing is defined at.
	SampleRate = 20e6
	// SilentSamples is the 16 µs silent period during which the reader
	// estimates the self-interference channel.
	SilentSamples = 320
	// ChipSamples is one preamble chip (1 µs).
	ChipSamples = 20
	// DefaultPreambleChips gives the standard 32 µs tag preamble.
	DefaultPreambleChips = 32
	// ExtendedPreambleChips gives the 96 µs variant of paper Fig. 8.
	ExtendedPreambleChips = 96
)

// Config selects the tag's transmission parameters.
type Config struct {
	// Mod is the PSK order.
	Mod Modulation
	// Coding is the convolutional code rate (1/2 or 2/3 in the paper).
	Coding fec.CodeRate
	// SymbolRateHz is the switching rate, 10 kHz – 2.5 MHz; it must
	// divide SampleRate.
	SymbolRateHz float64
	// PreambleChips is the tag preamble length in 1 µs chips
	// (DefaultPreambleChips unless experimenting with training time).
	PreambleChips int
	// ID selects the wake sequence.
	ID int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Mod.Validate(); err != nil {
		return err
	}
	if err := c.Coding.Validate(); err != nil {
		return err
	}
	if c.ID < 0 {
		return fmt.Errorf("tag: negative tag ID %d", c.ID)
	}
	if c.SymbolRateHz <= 0 {
		return fmt.Errorf("tag: symbol rate must be positive")
	}
	sps := SampleRate / c.SymbolRateHz
	if sps != float64(int(sps)) {
		return fmt.Errorf("tag: symbol rate %v Hz does not divide the %v Hz sample rate", c.SymbolRateHz, float64(SampleRate))
	}
	if int(sps) < 2 {
		return fmt.Errorf("tag: symbol rate %v Hz leaves fewer than 2 samples per symbol", c.SymbolRateHz)
	}
	if c.PreambleChips < 8 {
		return fmt.Errorf("tag: preamble of %d chips too short to estimate the channel", c.PreambleChips)
	}
	return nil
}

// SamplesPerSymbol returns the baseband samples per tag symbol.
func (c Config) SamplesPerSymbol() int { return int(SampleRate / c.SymbolRateHz) }

// PreambleSamples returns the preamble duration in samples.
func (c Config) PreambleSamples() int { return c.PreambleChips * ChipSamples }

// BitRate returns the information bit rate in bits/s.
func (c Config) BitRate() float64 {
	return c.SymbolRateHz * float64(c.Mod.BitsPerSymbol()) * c.Coding.Fraction()
}

// String formats like "16PSK 2/3 @ 2.5 Msym/s".
func (c Config) String() string {
	return fmt.Sprintf("%s %s @ %g Msym/s", c.Mod, c.Coding, c.SymbolRateHz/1e6)
}

// PreambleSequence returns the tag's known pseudo-random preamble: one
// BPSK phasor (±1) per 1 µs chip. Both the tag and the reader derive it
// from the tag ID.
func PreambleSequence(id, chips int) []complex128 {
	r := rand.New(rand.NewSource(0xbacf + int64(id)))
	out := make([]complex128, chips)
	for i := range out {
		out[i] = complex(float64(2*r.Intn(2)-1), 0)
	}
	return out
}

// TxPlan records where each protocol phase of a tag transmission falls
// within the excitation packet, for the reader and for ground-truthing
// tests.
type TxPlan struct {
	Cfg Config
	// SilentEnd is the sample index where the silent period ends and
	// the preamble begins.
	SilentEnd int
	// PreambleEnd is where payload symbols begin.
	PreambleEnd int
	// NumSymbols is the number of payload PSK symbols.
	NumSymbols int
	// Symbols holds the transmitted constellation phasors
	// (ground truth, used by tests and BER measurement).
	Symbols []complex128
	// CodedBits are the punctured coded bits carried by Symbols.
	CodedBits []byte
	// InfoBits is the frame information bit count (multiple of 8).
	InfoBits int
	// Payload is the application payload carried.
	Payload []byte
}

// End returns the sample index where the tag stops modulating.
func (p *TxPlan) End() int {
	return p.PreambleEnd + p.NumSymbols*p.Cfg.SamplesPerSymbol()
}

// Tag is a BackFi IoT sensor.
type Tag struct {
	Cfg      Config
	Detector *EnergyDetector
	wakeSeq  []byte
	wakeID   int
}

// New returns a tag with the given configuration.
func New(cfg Config) (*Tag, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Tag{Cfg: cfg, Detector: NewEnergyDetector(), wakeSeq: WakeSequence(cfg.ID), wakeID: cfg.ID}, nil
}

// NewWithWake returns a tag whose wake correlator listens for wakeID's
// sequence instead of its own ID's. This is the group wake of the
// multi-tag MAC (DESIGN.md §5i): every tag in an arbitration group
// shares one wake sequence — a single wake burst lights the whole
// group — while Cfg.ID still selects the tag's own PN preamble, which
// is what the reader's joint decoder separates the reflections by.
func NewWithWake(cfg Config, wakeID int) (*Tag, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if wakeID < 0 {
		return nil, fmt.Errorf("tag: negative wake ID %d", wakeID)
	}
	return &Tag{Cfg: cfg, Detector: NewEnergyDetector(), wakeSeq: WakeSequence(wakeID), wakeID: wakeID}, nil
}

// WakeSeq returns the tag's 16-bit wake sequence.
func (t *Tag) WakeSeq() []byte { return t.wakeSeq }

// WakeID returns the ID whose sequence the tag wakes on — Cfg.ID
// unless the tag was built with NewWithWake.
func (t *Tag) WakeID() int { return t.wakeID }

// PayloadCapacity returns the largest payload (bytes) that fits in an
// excitation packet of packetSamples.
func (t *Tag) PayloadCapacity(packetSamples int) int {
	avail := packetSamples - SilentSamples - t.Cfg.PreambleSamples()
	if avail <= 0 {
		return -1
	}
	return MaxPayloadBytes(avail/t.Cfg.SamplesPerSymbol(), t.Cfg.Coding, t.Cfg.Mod)
}

// ModulationSequence builds the per-sample reflection coefficient m[n]
// over an excitation packet of packetSamples: zero during the silent
// period, the PN preamble phasors, then the payload PSK symbols (zero
// again after the frame ends). It returns the plan describing the
// layout.
func (t *Tag) ModulationSequence(packetSamples int, payload []byte) ([]complex128, *TxPlan, error) {
	cfg := t.Cfg
	if cap := t.PayloadCapacity(packetSamples); len(payload) > cap {
		return nil, nil, fmt.Errorf("tag: payload %d bytes exceeds capacity %d for %d-sample excitation", len(payload), cap, packetSamples)
	}
	coded := EncodeFrameBits(payload, cfg.Coding, cfg.Mod)
	symbols := cfg.Mod.MapBits(coded)

	m := make([]complex128, packetSamples)
	// Preamble chips.
	pre := PreambleSequence(cfg.ID, cfg.PreambleChips)
	idx := SilentSamples
	for _, chip := range pre {
		for k := 0; k < ChipSamples; k++ {
			m[idx] = chip
			idx++
		}
	}
	// Payload symbols.
	sps := cfg.SamplesPerSymbol()
	for _, sym := range symbols {
		for k := 0; k < sps; k++ {
			m[idx] = sym
			idx++
		}
	}
	plan := &TxPlan{
		Cfg:         cfg,
		SilentEnd:   SilentSamples,
		PreambleEnd: SilentSamples + cfg.PreambleSamples(),
		NumSymbols:  len(symbols),
		Symbols:     symbols,
		CodedBits:   coded,
		InfoBits:    FrameInfoBits(len(payload)),
		Payload:     payload,
	}
	return m, plan, nil
}

// Backscatter applies the modulation sequence to the excitation signal
// as seen at the tag antenna (z = x ⊛ h_f): the reflected waveform is
// the elementwise product.
func Backscatter(z, m []complex128) []complex128 {
	if len(m) > len(z) {
		m = m[:len(z)]
	}
	out := make([]complex128, len(z))
	for i := range m {
		out[i] = z[i] * m[i]
	}
	return out
}

// TryWake runs the energy detector over a received stream that should
// contain this tag's wake preamble, returning the sample index where
// the excitation packet starts.
func (t *Tag) TryWake(rx []complex128) (int, bool) {
	return t.Detector.Detect(rx, t.wakeSeq)
}
