package tag

import (
	"fmt"

	"backfi/internal/fec"
)

// Downlink: the AP→tag control channel (paper Sec. 5.2.1). BackFi
// reuses the prior WiFi-backscatter downlink design [27]: the AP
// on-off-keys short energy bursts that the tag's wake-up envelope
// detector demodulates at ≈20 kbps. It is used for commands and
// configuration (select modulation, symbol rate, report schedule) —
// the uplink carries the sensor data.

// DownlinkBitSamples is one OOK bit period: 50 µs at 20 MHz → 20 kbps.
const DownlinkBitSamples = 1000

// DownlinkRateBps is the nominal downlink information rate.
const DownlinkRateBps = 20e3

// downlinkPreamble marks the start of a downlink frame; chosen to be
// distinguishable from the all-ones idle carrier and balanced enough
// for the threshold detector.
var downlinkPreamble = []byte{1, 0, 1, 1, 0, 0, 1, 0}

// EncodeDownlink builds the OOK waveform for a command payload:
// [preamble][len:8][payload][crc8], Manchester-coded so the envelope
// detector's threshold tracker always sees both levels.
func EncodeDownlink(payload []byte, amplitude float64) ([]complex128, error) {
	if len(payload) > 255 {
		return nil, fmt.Errorf("tag: downlink payload %d bytes exceeds 255", len(payload))
	}
	frame := append([]byte{byte(len(payload))}, payload...)
	frame = append(frame, fec.CRC8(frame))
	bits := append(append([]byte{}, downlinkPreamble...), manchester(fec.BytesToBits(frame))...)
	out := make([]complex128, len(bits)*DownlinkBitSamples)
	for i, b := range bits {
		if b == 0 {
			continue
		}
		for k := 0; k < DownlinkBitSamples; k++ {
			out[i*DownlinkBitSamples+k] = complex(amplitude, 0)
		}
	}
	return out, nil
}

// manchester expands each bit into (b, ¬b).
func manchester(bits []byte) []byte {
	out := make([]byte, 0, 2*len(bits))
	for _, b := range bits {
		out = append(out, b, 1-b)
	}
	return out
}

// DecodeDownlink demodulates a received OOK stream with the tag's
// envelope detector model: per-bit energy integration, half-peak
// threshold, preamble search, Manchester decode, CRC check.
func DecodeDownlink(rx []complex128, sensitivityW float64) ([]byte, error) {
	nbits := len(rx) / DownlinkBitSamples
	if nbits < len(downlinkPreamble)+2 {
		return nil, fmt.Errorf("tag: downlink stream too short (%d bits)", nbits)
	}
	env := make([]float64, nbits)
	peak := 0.0
	for i := range env {
		var e float64
		for k := 0; k < DownlinkBitSamples; k++ {
			v := rx[i*DownlinkBitSamples+k]
			e += real(v)*real(v) + imag(v)*imag(v)
		}
		env[i] = e / DownlinkBitSamples
		if env[i] > peak {
			peak = env[i]
		}
	}
	if peak < sensitivityW {
		return nil, fmt.Errorf("tag: downlink below detector sensitivity")
	}
	thresh := peak / 4 // half-amplitude
	bits := make([]byte, nbits)
	for i, e := range env {
		if e >= thresh {
			bits[i] = 1
		}
	}
	// Find the preamble.
	start := -1
	for off := 0; off+len(downlinkPreamble) <= nbits; off++ {
		match := true
		for i, p := range downlinkPreamble {
			if bits[off+i] != p {
				match = false
				break
			}
		}
		if match {
			start = off + len(downlinkPreamble)
			break
		}
	}
	if start < 0 {
		return nil, fmt.Errorf("tag: downlink preamble not found")
	}
	// Manchester decode with mid-bit validation.
	var frameBits []byte
	for i := start; i+1 < nbits; i += 2 {
		if bits[i] == bits[i+1] {
			break // end of Manchester region (idle or corruption)
		}
		frameBits = append(frameBits, bits[i])
	}
	if len(frameBits) < 16 || len(frameBits)%8 != 0 {
		// Trim to whole bytes; a trailing partial byte means the frame
		// ended mid-air.
		frameBits = frameBits[:len(frameBits)/8*8]
		if len(frameBits) < 16 {
			return nil, fmt.Errorf("tag: downlink frame truncated")
		}
	}
	frame := fec.BitsToBytes(frameBits)
	n := int(frame[0])
	if len(frame) < 1+n+1 {
		return nil, fmt.Errorf("tag: downlink frame claims %d bytes, has %d", n, len(frame)-2)
	}
	body := frame[:1+n]
	if fec.CRC8(body) != frame[1+n] {
		return nil, fmt.Errorf("tag: downlink CRC mismatch")
	}
	return frame[1 : 1+n], nil
}
