package tag

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestQAM16Basics(t *testing.T) {
	if QAM16.BitsPerSymbol() != 4 || QAM16.Points() != 16 {
		t.Fatal("QAM16 dimensions wrong")
	}
	if QAM16.String() != "16QAM" {
		t.Fatalf("String = %q", QAM16.String())
	}
	if QAM16.SwitchCount() != 15 {
		t.Fatalf("switch count %d", QAM16.SwitchCount())
	}
}

func TestQAM16PeakNormalized(t *testing.T) {
	// Reflection physics: |Γ| ≤ 1, with the corners exactly at 1.
	maxMag := 0.0
	for _, pt := range qam16Points {
		m := cmplx.Abs(pt)
		if m > 1+1e-12 {
			t.Fatalf("point %v exceeds unit reflection", pt)
		}
		if m > maxMag {
			maxMag = m
		}
	}
	if math.Abs(maxMag-1) > 1e-12 {
		t.Fatalf("peak %v, corners should touch 1", maxMag)
	}
}

func TestQAM16ReflectedEnergyPenalty(t *testing.T) {
	// The paper's reason to prefer PSK: peak-normalized 16-QAM reflects
	// only 5/9 of the energy (−2.55 dB) on average.
	got := QAM16AveragePower()
	if math.Abs(got-5.0/9) > 1e-12 {
		t.Fatalf("average power %v, want 5/9", got)
	}
}

func TestQAM16MapDemapRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	bits := randomBits(r, 4*200)
	got := QAM16.DemapHard(QAM16.MapBits(bits))
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("bit %d differs", i)
		}
	}
}

func TestQAM16SoftSigns(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	bits := randomBits(r, 4*64)
	soft := QAM16.DemapSoft(QAM16.MapBits(bits))
	for i, b := range bits {
		if b == 0 && soft[i] <= 0 || b == 1 && soft[i] >= 0 {
			t.Fatalf("bit %d=%d soft %v", i, b, soft[i])
		}
	}
}

func TestQAM16GrayPerAxis(t *testing.T) {
	// Horizontally/vertically adjacent points differ in exactly one bit.
	dmin := 2 / math.Sqrt(18)
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			if a == b {
				continue
			}
			if cmplx.Abs(qam16Points[a]-qam16Points[b]) > dmin*1.001 {
				continue
			}
			diff := 0
			for x := a ^ b; x != 0; x >>= 1 {
				diff += x & 1
			}
			if diff != 1 {
				t.Fatalf("neighbors %04b/%04b differ in %d bits", a, b, diff)
			}
		}
	}
}

func TestQAM16PhasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	QAM16.Phase(0)
}

func TestQAM16FrameEncodeDecode(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	payload := make([]byte, 40)
	r.Read(payload)
	coded := EncodeFrameBits(payload, 0, QAM16) // fec.Rate12 == 0
	soft := make([]float64, len(coded))
	for i, b := range coded {
		soft[i] = 1 - 2*float64(b)
	}
	got, err := DecodeFrameBits(soft, 0, FrameInfoBits(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}
