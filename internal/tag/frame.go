package tag

import (
	"encoding/binary"
	"fmt"

	"backfi/internal/fec"
)

// Frame framing overhead: 2-byte little-endian payload length plus a
// 1-byte CRC-8 trailer.
const (
	frameHeaderBytes  = 2
	frameTrailerBytes = 1
	// FrameOverheadBits is the framing cost in information bits.
	FrameOverheadBits = 8 * (frameHeaderBytes + frameTrailerBytes)
)

// BuildFrame wraps a payload into the tag's uplink frame:
// [len:2][payload][crc8 over len+payload].
func BuildFrame(payload []byte) []byte {
	out := make([]byte, frameHeaderBytes+len(payload)+frameTrailerBytes)
	binary.LittleEndian.PutUint16(out, uint16(len(payload)))
	copy(out[frameHeaderBytes:], payload)
	out[len(out)-1] = fec.CRC8(out[:len(out)-1])
	return out
}

// ParseFrame validates and unwraps a frame, returning the payload.
func ParseFrame(frame []byte) ([]byte, error) {
	if len(frame) < frameHeaderBytes+frameTrailerBytes {
		return nil, fmt.Errorf("tag: frame too short (%d bytes)", len(frame))
	}
	n := int(binary.LittleEndian.Uint16(frame))
	want := frameHeaderBytes + n + frameTrailerBytes
	if len(frame) < want {
		return nil, fmt.Errorf("tag: frame claims %d payload bytes but has %d total", n, len(frame))
	}
	body := frame[:want-1]
	if fec.CRC8(body) != frame[want-1] {
		return nil, fmt.Errorf("tag: frame CRC mismatch")
	}
	return frame[frameHeaderBytes : frameHeaderBytes+n], nil
}

// EncodeFrameBits builds the coded symbol bit stream for a payload:
// frame bytes → bits → terminated convolutional encoding → puncturing,
// padded to a whole number of PSK symbols.
func EncodeFrameBits(payload []byte, coding fec.CodeRate, mod Modulation) []byte {
	bits := fec.BytesToBits(BuildFrame(payload))
	coded := fec.EncodePunctured(bits, coding)
	k := mod.BitsPerSymbol()
	for len(coded)%k != 0 {
		coded = append(coded, 0)
	}
	return coded
}

// DecodeFrameBits inverts EncodeFrameBits from soft values: depuncture,
// Viterbi, deframe. nInfoBits is the frame bit count (a multiple of 8).
func DecodeFrameBits(soft []float64, coding fec.CodeRate, nInfoBits int) ([]byte, error) {
	// Trim pad soft bits so the punctured length matches.
	steps := nInfoBits + fec.TailBits
	needed := fec.PuncturedLength(2*steps, coding)
	if len(soft) < needed {
		return nil, fmt.Errorf("tag: %d soft bits, need %d", len(soft), needed)
	}
	bits, err := fec.DecodePunctured(soft[:needed], coding, nInfoBits, true)
	if err != nil {
		return nil, err
	}
	return ParseFrame(fec.BitsToBytes(bits))
}

// FrameInfoBits returns the information bit count (including framing)
// for a payload of n bytes.
func FrameInfoBits(n int) int {
	return 8*n + FrameOverheadBits
}

// SymbolsForPayload returns how many PSK symbols a payload of n bytes
// occupies at the given coding and modulation.
func SymbolsForPayload(n int, coding fec.CodeRate, mod Modulation) int {
	steps := FrameInfoBits(n) + fec.TailBits
	coded := fec.PuncturedLength(2*steps, coding)
	k := mod.BitsPerSymbol()
	return (coded + k - 1) / k
}

// MaxPayloadBytes returns the largest payload that fits in nSymbols
// PSK symbols, or a negative value if even an empty frame doesn't fit.
func MaxPayloadBytes(nSymbols int, coding fec.CodeRate, mod Modulation) int {
	// Invert SymbolsForPayload: binary search is overkill; step down
	// from the closed-form estimate.
	codedBits := nSymbols * mod.BitsPerSymbol()
	infoEst := int(float64(codedBits)*coding.Fraction()) - fec.TailBits
	n := (infoEst - FrameOverheadBits) / 8
	for n >= 0 && SymbolsForPayload(n, coding, mod) > nSymbols {
		n--
	}
	return n
}
