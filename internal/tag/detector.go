package tag

import (
	"math"
	"math/rand"

	"backfi/internal/dsp"
)

// Wake-up protocol constants (paper Sec. 4.1).
const (
	// WakeBits is the length of the AP's pseudo-random wake preamble.
	WakeBits = 16
	// WakeBitSamples is one preamble bit period (1 µs at 20 MHz).
	WakeBitSamples = 20
	// WakeLenSamples is the whole wake preamble duration (16 µs).
	WakeLenSamples = WakeBits * WakeBitSamples
)

// WakeSequence returns the 16-bit pseudo-random preamble assigned to a
// tag id. The AP transmits a pulse for each one bit and silence for
// each zero. Sequences are balanced (8 ones) so the detector threshold
// (half the peak) discriminates.
func WakeSequence(tagID int) []byte {
	r := rand.New(rand.NewSource(0x5eed + int64(tagID)))
	bits := make([]byte, WakeBits)
	ones := 0
	for ones != 8 {
		ones = 0
		for i := range bits {
			bits[i] = byte(r.Intn(2))
			ones += int(bits[i])
		}
	}
	return bits
}

// WakeWaveform builds the AP's on-off-keyed wake transmission for the
// given sequence at the given amplitude (√watts per sample during a
// pulse).
func WakeWaveform(seq []byte, amplitude float64) []complex128 {
	out := make([]complex128, len(seq)*WakeBitSamples)
	for i, b := range seq {
		if b == 0 {
			continue
		}
		for k := 0; k < WakeBitSamples; k++ {
			out[i*WakeBitSamples+k] = complex(amplitude, 0)
		}
	}
	return out
}

// EnergyDetector models the tag's sub-µW wake-up receiver: an envelope
// detector, a peak-hold with a half-amplitude threshold, a 1 µs
// comparator, and a sliding 16-bit correlator (paper Sec. 4.1,
// refs [40, 18]).
type EnergyDetector struct {
	// SensitivityDBm is the weakest detectable input (paper −41 to
	// −56 dBm; the conservative −41 dBm figure is the default).
	SensitivityDBm float64
	// MatchThreshold is the minimum number of matching bits (of 16)
	// to declare a wake (allows a couple of comparator errors).
	MatchThreshold int
}

// NewEnergyDetector returns a detector with the paper's conservative
// sensitivity.
func NewEnergyDetector() *EnergyDetector {
	return &EnergyDetector{SensitivityDBm: -41, MatchThreshold: 15}
}

// Detect scans the received baseband stream for the wake sequence.
// It returns the sample index just after the preamble (where the
// excitation packet begins) and true, or 0 and false.
func (d *EnergyDetector) Detect(rx []complex128, seq []byte) (int, bool) {
	if len(rx) < len(seq)*WakeBitSamples {
		return 0, false
	}
	// Envelope → per-bit energy decisions.
	nbits := len(rx) / WakeBitSamples
	env := make([]float64, nbits)
	for i := range env {
		var e float64
		for k := 0; k < WakeBitSamples; k++ {
			v := rx[i*WakeBitSamples+k]
			e += real(v)*real(v) + imag(v)*imag(v)
		}
		env[i] = e / WakeBitSamples
	}
	floor := dsp.UnDBm(d.SensitivityDBm)
	// Peak-hold threshold: half the peak *amplitude* = quarter power.
	peak := 0.0
	for _, e := range env {
		if e > peak {
			peak = e
		}
	}
	if peak < floor {
		return 0, false
	}
	thresh := peak / 4
	bits := make([]byte, nbits)
	for i, e := range env {
		if e >= thresh {
			bits[i] = 1
		}
	}
	// Sliding correlation.
	for off := 0; off+len(seq) <= nbits; off++ {
		match := 0
		for i, s := range seq {
			if bits[off+i] == s {
				match++
			}
		}
		if match >= d.MatchThreshold {
			return (off + len(seq)) * WakeBitSamples, true
		}
	}
	return 0, false
}

// DetectionRangeM returns the maximum AP–tag distance at which the
// detector wakes, for a given transmit power and one-way path loss
// model — a planning helper used by the examples.
func (d *EnergyDetector) DetectionRangeM(txPowerDBm, plExponent, pl1mDB float64) float64 {
	margin := txPowerDBm - d.SensitivityDBm - pl1mDB
	if margin <= 0 {
		return 0
	}
	return math.Pow(10, margin/(10*plExponent))
}
