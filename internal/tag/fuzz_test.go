package tag

import "testing"

// FuzzParseFrame must reject or accept arbitrary bytes without
// panicking, and anything it accepts must re-serialize consistently.
func FuzzParseFrame(f *testing.F) {
	f.Add(BuildFrame([]byte("hello")))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ParseFrame(data)
		if err != nil {
			return
		}
		// Round-trip: rebuilding must produce a frame that parses to
		// the same payload.
		again, err := ParseFrame(BuildFrame(payload))
		if err != nil {
			t.Fatalf("accepted payload fails rebuild: %v", err)
		}
		if string(again) != string(payload) {
			t.Fatal("rebuild changed the payload")
		}
	})
}

// FuzzDecodeDownlink exercises the OOK demodulator on arbitrary
// envelopes.
func FuzzDecodeDownlink(f *testing.F) {
	wave, _ := EncodeDownlink([]byte{1, 2, 3}, 1)
	seed := make([]byte, len(wave)/100)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		rx := make([]complex128, len(data)*50)
		for i, b := range data {
			for k := 0; k < 50; k++ {
				rx[i*50+k] = complex(float64(b)/255, 0)
			}
		}
		_, _ = DecodeDownlink(rx, 1e-9)
	})
}
