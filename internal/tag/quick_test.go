package tag

import (
	"bytes"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"backfi/internal/fec"
)

// Property-based coverage of the tag's framing and modulation.

func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) > 2000 {
			payload = payload[:2000]
		}
		got, err := ParseFrame(BuildFrame(payload))
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEncodeDecodeFrameBits(t *testing.T) {
	f := func(seed int64, n uint8, modSel, codeSel uint8) bool {
		r := rand.New(rand.NewSource(seed))
		mod := AllModulations[int(modSel)%len(AllModulations)]
		coding := []fec.CodeRate{fec.Rate12, fec.Rate23}[int(codeSel)%2]
		payload := make([]byte, int(n)%120)
		r.Read(payload)
		soft := fec.HardToSoft(EncodeFrameBits(payload, coding, mod))
		got, err := DecodeFrameBits(soft, coding, FrameInfoBits(len(payload)))
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickModulationRoundTrip(t *testing.T) {
	f := func(seed int64, modSel uint8, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		mod := AllModulations[int(modSel)%len(AllModulations)]
		bits := make([]byte, mod.BitsPerSymbol()*(int(n)%64+1))
		for i := range bits {
			bits[i] = byte(r.Intn(2))
		}
		pts := mod.MapBits(bits)
		// Physical constraint: every reflection state within |Γ| ≤ 1.
		for _, p := range pts {
			if cmplx.Abs(p) > 1+1e-12 {
				return false
			}
		}
		return bytes.Equal(mod.DemapHard(pts), bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCapacityInverse(t *testing.T) {
	f := func(modSel, codeSel uint8, n uint8) bool {
		mod := AllModulations[int(modSel)%len(AllModulations)]
		coding := []fec.CodeRate{fec.Rate12, fec.Rate23}[int(codeSel)%2]
		payload := int(n)
		syms := SymbolsForPayload(payload, coding, mod)
		// The capacity of exactly that many symbols fits the payload...
		if MaxPayloadBytes(syms, coding, mod) < payload {
			return false
		}
		// ...and removing a symbol must not still claim to fit it.
		return SymbolsForPayload(payload, coding, mod) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
