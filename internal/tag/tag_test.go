package tag

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"backfi/internal/dsp"
	"backfi/internal/fec"
)

func testConfig() Config {
	return Config{Mod: QPSK, Coding: fec.Rate12, SymbolRateHz: 1e6, PreambleChips: DefaultPreambleChips, ID: 1}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.SymbolRateHz = 0
	if bad.Validate() == nil {
		t.Fatal("expected error for zero symbol rate")
	}
	bad = good
	bad.SymbolRateHz = 3e6 // 20e6/3e6 not integer
	if bad.Validate() == nil {
		t.Fatal("expected error for non-divisor symbol rate")
	}
	bad = good
	bad.SymbolRateHz = 20e6 // 1 sample/symbol
	if bad.Validate() == nil {
		t.Fatal("expected error for 1 sample per symbol")
	}
	bad = good
	bad.PreambleChips = 4
	if bad.Validate() == nil {
		t.Fatal("expected error for tiny preamble")
	}
}

func TestConfigDerivedValues(t *testing.T) {
	c := testConfig()
	if c.SamplesPerSymbol() != 20 {
		t.Fatalf("sps = %d", c.SamplesPerSymbol())
	}
	if c.PreambleSamples() != 640 {
		t.Fatalf("preamble samples = %d", c.PreambleSamples())
	}
	// QPSK 1/2 at 1 Msym/s is 1 Mbps (paper Fig. 7 row 1 MHz).
	if c.BitRate() != 1e6 {
		t.Fatalf("bit rate = %v", c.BitRate())
	}
}

func TestBitRatesMatchPaperTable(t *testing.T) {
	// Spot-check throughput cells of paper Fig. 7.
	cases := []struct {
		mod    Modulation
		coding fec.CodeRate
		rs     float64
		want   float64
	}{
		{BPSK, fec.Rate12, 10e3, 5e3},
		{BPSK, fec.Rate23, 2.5e6, 2.5e6 * 2 / 3},
		{QPSK, fec.Rate23, 2e6, 2e6 * 2 * 2 / 3},
		{PSK16, fec.Rate12, 2.5e6, 5e6},
		{PSK16, fec.Rate23, 2.5e6, 2.5e6 * 4 * 2 / 3},
	}
	for _, c := range cases {
		cfg := Config{Mod: c.mod, Coding: c.coding, SymbolRateHz: c.rs, PreambleChips: 32}
		if got := cfg.BitRate(); math.Abs(got-c.want) > 1e-6*c.want {
			t.Fatalf("%v: bit rate %v, want %v", cfg, got, c.want)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 17, 500} {
		payload := make([]byte, n)
		r.Read(payload)
		got, err := ParseFrame(BuildFrame(payload))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("n=%d: payload differs", n)
		}
	}
}

func TestParseFrameErrors(t *testing.T) {
	if _, err := ParseFrame([]byte{1}); err == nil {
		t.Fatal("expected error for short frame")
	}
	f := BuildFrame([]byte{1, 2, 3})
	f[2] ^= 0xFF
	if _, err := ParseFrame(f); err == nil {
		t.Fatal("expected CRC error")
	}
	// Claimed length beyond buffer.
	g := BuildFrame([]byte{1})
	g[0] = 200
	if _, err := ParseFrame(g); err == nil {
		t.Fatal("expected length error")
	}
}

func TestEncodeDecodeFrameBits(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, mod := range Modulations {
		for _, coding := range []fec.CodeRate{fec.Rate12, fec.Rate23} {
			payload := make([]byte, 60)
			r.Read(payload)
			coded := EncodeFrameBits(payload, coding, mod)
			if len(coded)%mod.BitsPerSymbol() != 0 {
				t.Fatalf("%v/%v: coded bits %d not symbol-aligned", mod, coding, len(coded))
			}
			soft := fec.HardToSoft(coded)
			got, err := DecodeFrameBits(soft, coding, FrameInfoBits(len(payload)))
			if err != nil {
				t.Fatalf("%v/%v: %v", mod, coding, err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("%v/%v: payload differs", mod, coding)
			}
		}
	}
}

func TestSymbolsForPayloadAndCapacityInverse(t *testing.T) {
	for _, mod := range Modulations {
		for _, coding := range []fec.CodeRate{fec.Rate12, fec.Rate23} {
			for _, n := range []int{0, 10, 100} {
				syms := SymbolsForPayload(n, coding, mod)
				got := MaxPayloadBytes(syms, coding, mod)
				if got < n {
					t.Fatalf("%v/%v n=%d: capacity %d of %d symbols", mod, coding, n, got, syms)
				}
				// One fewer symbol must not fit n... only guaranteed when
				// the payload exactly saturates; check weaker property:
				if MaxPayloadBytes(0, coding, mod) >= 0 {
					t.Fatalf("empty symbol budget should not fit a frame")
				}
			}
		}
	}
}

func TestPreambleSequenceDeterministicPerID(t *testing.T) {
	a := PreambleSequence(7, 32)
	b := PreambleSequence(7, 32)
	c := PreambleSequence(8, 32)
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("preamble not deterministic")
		}
		if a[i] != c[i] {
			diff++
		}
		if a[i] != 1 && a[i] != -1 {
			t.Fatalf("chip %v not ±1", a[i])
		}
	}
	if diff < 8 {
		t.Fatalf("IDs 7 and 8 share almost the same preamble (%d diffs)", diff)
	}
}

func TestModulationSequenceLayout(t *testing.T) {
	tg, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	const packet = 20000
	payload := []byte("hello backfi")
	m, plan, err := tg.ModulationSequence(packet, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != packet {
		t.Fatalf("sequence length %d", len(m))
	}
	// Silent period all zero.
	for i := 0; i < plan.SilentEnd; i++ {
		if m[i] != 0 {
			t.Fatalf("silent period modulated at %d", i)
		}
	}
	// Preamble matches the PN chips.
	pre := PreambleSequence(tg.Cfg.ID, tg.Cfg.PreambleChips)
	for i := plan.SilentEnd; i < plan.PreambleEnd; i++ {
		chip := pre[(i-plan.SilentEnd)/ChipSamples]
		if m[i] != chip {
			t.Fatalf("preamble mismatch at %d", i)
		}
	}
	// Payload symbols hold for SamplesPerSymbol each.
	sps := tg.Cfg.SamplesPerSymbol()
	for s := 0; s < plan.NumSymbols; s++ {
		for k := 0; k < sps; k++ {
			idx := plan.PreambleEnd + s*sps + k
			if m[idx] != plan.Symbols[s] {
				t.Fatalf("symbol %d sample %d mismatch", s, k)
			}
		}
	}
	// After the frame: silent again.
	for i := plan.End(); i < packet; i++ {
		if m[i] != 0 {
			t.Fatalf("tag still modulating at %d", i)
		}
	}
}

func TestModulationSequenceRejectsOversizedPayload(t *testing.T) {
	tg, _ := New(testConfig())
	const packet = 2000 // tiny excitation
	cap := tg.PayloadCapacity(packet)
	if _, _, err := tg.ModulationSequence(packet, make([]byte, cap+1)); err == nil {
		t.Fatal("expected capacity error")
	}
	if _, _, err := tg.ModulationSequence(packet, make([]byte, max(cap, 0))); cap >= 0 && err != nil {
		t.Fatalf("payload at capacity should fit: %v", err)
	}
}

func TestPayloadCapacityGrowsWithPacket(t *testing.T) {
	tg, _ := New(testConfig())
	c1 := tg.PayloadCapacity(10000)
	c2 := tg.PayloadCapacity(40000)
	if c2 <= c1 {
		t.Fatalf("capacity %d → %d should grow", c1, c2)
	}
	if tg.PayloadCapacity(SilentSamples) != -1 {
		t.Fatal("no room should give -1")
	}
}

func TestBackscatterProduct(t *testing.T) {
	z := []complex128{1, 2, complex(0, 1)}
	m := []complex128{complex(0, 1), 0}
	out := Backscatter(z, m)
	if out[0] != complex(0, 1) || out[1] != 0 || out[2] != 0 {
		t.Fatalf("Backscatter = %v", out)
	}
}

func TestWakeSequenceBalancedAndStable(t *testing.T) {
	for id := 0; id < 20; id++ {
		seq := WakeSequence(id)
		if len(seq) != WakeBits {
			t.Fatalf("length %d", len(seq))
		}
		ones := 0
		for _, b := range seq {
			ones += int(b)
		}
		if ones != 8 {
			t.Fatalf("id %d: %d ones", id, ones)
		}
	}
	a, b := WakeSequence(3), WakeSequence(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("wake sequence not deterministic")
		}
	}
}

func TestEnergyDetectorFindsWake(t *testing.T) {
	seq := WakeSequence(5)
	amp := dsp.UnDBm(-30) // strong received wake
	wave := WakeWaveform(seq, math.Sqrt(amp))
	rx := dsp.Concat(dsp.Zeros(200), wave, dsp.Zeros(500))
	det := NewEnergyDetector()
	start, ok := det.Detect(rx, seq)
	if !ok {
		t.Fatal("wake not detected")
	}
	want := 200 + len(wave)
	if start < want-WakeBitSamples || start > want+WakeBitSamples {
		t.Fatalf("packet start %d, want ≈%d", start, want)
	}
}

func TestEnergyDetectorRejectsWeakSignal(t *testing.T) {
	seq := WakeSequence(5)
	amp := dsp.UnDBm(-70) // below −41 dBm sensitivity
	wave := WakeWaveform(seq, math.Sqrt(amp))
	det := NewEnergyDetector()
	if _, ok := det.Detect(wave, seq); ok {
		t.Fatal("detected a wake below sensitivity")
	}
}

func TestEnergyDetectorRejectsWrongSequence(t *testing.T) {
	seq := WakeSequence(5)
	other := WakeSequence(11)
	wave := WakeWaveform(other, math.Sqrt(dsp.UnDBm(-20)))
	det := NewEnergyDetector()
	if _, ok := det.Detect(wave, seq); ok {
		t.Fatal("woke on another tag's sequence")
	}
}

func TestEnergyDetectorShortInput(t *testing.T) {
	det := NewEnergyDetector()
	if _, ok := det.Detect(dsp.Zeros(10), WakeSequence(0)); ok {
		t.Fatal("detected in short input")
	}
}

func TestDetectionRange(t *testing.T) {
	det := NewEnergyDetector()
	// 20 dBm TX, 40 dB loss at 1 m, η=2: margin 21 dB → ≈ 11 m.
	got := det.DetectionRangeM(20, 2, 40)
	if got < 10 || got > 13 {
		t.Fatalf("detection range %v m", got)
	}
	if det.DetectionRangeM(-30, 2, 40) != 0 {
		t.Fatal("negative margin should give 0 range")
	}
}

func TestTryWakeEndToEnd(t *testing.T) {
	tg, _ := New(testConfig())
	wave := WakeWaveform(tg.WakeSeq(), math.Sqrt(dsp.UnDBm(-25)))
	rx := dsp.Concat(dsp.Zeros(100), wave, dsp.Zeros(1000))
	if _, ok := tg.TryWake(rx); !ok {
		t.Fatal("TryWake failed")
	}
}
