// Package reader implements the BackFi AP's backscatter receive chain
// (paper Sec. 4.3): after self-interference cancellation it estimates
// the combined forward·backward tag channel h_f⊛h_b from the tag's
// known preamble, then decodes each slow tag symbol by maximal-ratio
// combining the many excitation-rate samples that fall inside it
// (paper Eq. 7), and finally runs the soft values through the Viterbi
// decoder and frame check.
package reader

import (
	"fmt"
	"math"
	"math/cmplx"

	"backfi/internal/dsp"
	"backfi/internal/fec"
	"backfi/internal/linalg"
	"backfi/internal/obs"
	"backfi/internal/sic"
	"backfi/internal/tag"
)

// Config tunes the backscatter decoder.
type Config struct {
	// ChannelTaps is the FIR length of the combined h_f⊛h_b estimate;
	// it must cover the true channel spread plus propagation delay
	// (paper: delay spread ≪ 500 ns, so ≤ 16 taps at 20 MHz).
	ChannelTaps int
	// Lambda is the ridge regularizer of the channel estimate.
	Lambda float64
	// TimingSearch is the ± range (in samples) over which the decoder
	// searches for the tag's symbol timing around the nominal protocol
	// position, using the PN preamble correlation (paper Sec. 4.1: the
	// preamble "is used by the reader to find the symbol timing").
	// 0 trusts protocol timing exactly.
	TimingSearch int
	// SIC is the self-interference canceller configuration.
	SIC sic.Config
	// Obs receives per-stage pipeline metrics (stage durations, failure
	// counters, preamble correlation, timing offsets, Viterbi corrected
	// bits). Nil disables instrumentation at zero cost. A registry set
	// here is inherited by the SIC stage (and, via core.NewLink, by the
	// whole link) unless those set their own.
	Obs *obs.Registry
}

// DefaultConfig returns the standard decoder settings.
func DefaultConfig() Config {
	return Config{ChannelTaps: 8, Lambda: 1e-16, TimingSearch: 6, SIC: sic.DefaultConfig()}
}

// Validate checks the decoder configuration, including the embedded
// canceller's.
func (c Config) Validate() error {
	if c.ChannelTaps <= 0 {
		return fmt.Errorf("reader: ChannelTaps %d must be positive", c.ChannelTaps)
	}
	if c.Lambda < 0 {
		return fmt.Errorf("reader: ridge regularizer %v must be non-negative", c.Lambda)
	}
	if c.TimingSearch < 0 {
		return fmt.Errorf("reader: TimingSearch %d must be non-negative", c.TimingSearch)
	}
	return c.SIC.Validate()
}

// Result is the outcome of decoding one tag transmission.
type Result struct {
	// Payload is the decoded application payload (nil if the frame
	// check failed).
	Payload []byte
	// FrameOK reports whether the CRC validated.
	FrameOK bool
	// SymbolEstimates are the per-symbol MRC phasor estimates r_s ≈
	// the transmitted constellation points.
	SymbolEstimates []complex128
	// SNRdB is the post-MRC symbol SNR estimated from the decision
	// errors — the "measured SNR" of paper Fig. 11a.
	SNRdB float64
	// SIC is the cancellation report.
	SIC sic.Report
	// Hfb is the combined channel estimate.
	Hfb []complex128
	// PreambleCorr is the normalized correlation of the received tag
	// preamble against the expected PN (1 = perfect).
	PreambleCorr float64
	// TimingOffset is the symbol-timing correction (samples) found by
	// the PN preamble search relative to the nominal protocol timing.
	TimingOffset int
	// ViterbiCorrectedBits counts the coded bits the Viterbi decoder
	// corrected inside the frame: hard decisions on the received soft
	// values vs the re-encoded decoded frame. 0 when the frame failed.
	ViterbiCorrectedBits int
}

// readerMetrics holds the decoder's instrument handles, resolved once
// at New so the per-packet path does no registry lookups. Every field
// is nil when metrics are disabled; all operations on nil instruments
// are no-ops.
type readerMetrics struct {
	spanSICTrain   *obs.Histogram
	spanSICCancel  *obs.Histogram
	spanChanEst    *obs.Histogram
	spanTiming     *obs.Histogram
	spanMRC        *obs.Histogram
	spanViterbi    *obs.Histogram
	preambleCorr   *obs.Histogram
	timingOffset   *obs.Histogram
	viterbiBits    *obs.Histogram
	failSICTrain   *obs.Counter
	failChanEst    *obs.Counter
	failPreamble   *obs.Counter
	failPayload    *obs.Counter
	failFrameCRC   *obs.Counter
	timingAdjusted *obs.Counter
}

func newReaderMetrics(r *obs.Registry) readerMetrics {
	if r == nil {
		return readerMetrics{}
	}
	stage := func(name string) *obs.Histogram {
		return r.Histogram(obs.MetricStageDuration, obs.HelpStageDuration, obs.DurationBuckets, "stage", name)
	}
	fail := func(name string) *obs.Counter {
		return r.Counter(obs.MetricStageFailures, "Decode aborts and frame failures by pipeline stage.", "stage", name)
	}
	return readerMetrics{
		spanSICTrain:   stage("sic_train"),
		spanSICCancel:  stage("sic_cancel"),
		spanChanEst:    stage("channel_estimate"),
		spanTiming:     stage("timing_search"),
		spanMRC:        stage("mrc"),
		spanViterbi:    stage("viterbi"),
		preambleCorr:   r.Histogram(obs.MetricPreambleCorr, "Normalized tag-preamble correlation (1 = perfect).", obs.LinBuckets(0, 0.05, 21)),
		timingOffset:   r.Histogram(obs.MetricTimingOffset, "Absolute symbol-timing correction in samples.", obs.CountBuckets),
		viterbiBits:    r.Histogram(obs.MetricViterbiCorrected, "Coded bits corrected by the Viterbi decoder per frame.", obs.CountBuckets),
		failSICTrain:   fail("sic_train"),
		failChanEst:    fail("channel_estimate"),
		failPreamble:   fail("preamble_room"),
		failPayload:    fail("payload_room"),
		failFrameCRC:   fail("frame_crc"),
		timingAdjusted: r.Counter("backfi_timing_adjusted_total", "Decodes where the PN search moved symbol timing off the protocol position."),
	}
}

// Reader decodes BackFi backscatter from an AP's received samples.
type Reader struct {
	cfg   Config
	m     readerMetrics
	trace obs.TraceCtx
}

// SetTrace points subsequent decodes (Decode and Stream.Decode alike)
// at the per-frame trace context (DESIGN.md §5h): each pipeline stage
// records a span onto it, including the SIC training sub-stages. The
// zero value disables tracing; the serving layer reassigns it per
// frame. Not safe concurrently with a running decode — same contract
// as the Reader itself.
func (r *Reader) SetTrace(t obs.TraceCtx) {
	r.trace = t
	r.cfg.SIC.Trace = t
}

// New returns a Reader, rejecting bad configuration with an error
// (never a panic).
func New(cfg Config) (*Reader, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SIC.Obs == nil {
		cfg.SIC.Obs = cfg.Obs
	}
	return &Reader{cfg: cfg, m: newReaderMetrics(cfg.Obs)}, nil
}

// Decode processes one excitation packet.
//
//	x           — the ideal transmitted samples (wake + PPDU), known to the AP
//	xTap        — the PA-output copy wired into the analog canceller
//	              (carries transmit distortion; pass x for ideal hardware)
//	y           — the received samples, same indexing as x
//	packetStart — index where the excitation PPDU (and tag timing) begins
//	packetLen   — PPDU length in samples
//	tcfg        — the tag's negotiated configuration
//
// The tag is silent for tag.SilentSamples after packetStart, sends its
// PN preamble, then payload symbols (tag.TxPlan layout).
func (r *Reader) Decode(x, xTap, y []complex128, packetStart, packetLen int, tcfg tag.Config) (*Result, error) {
	if err := tcfg.Validate(); err != nil {
		return nil, err
	}
	if len(x) != len(y) || len(xTap) != len(y) {
		return nil, fmt.Errorf("reader: x/xTap/y length mismatch %d/%d/%d", len(x), len(xTap), len(y))
	}
	if packetStart+packetLen > len(x) {
		return nil, fmt.Errorf("reader: packet [%d,%d) exceeds %d samples", packetStart, packetStart+packetLen, len(x))
	}

	// Stage 1: self-interference cancellation, trained on the silent
	// window (the tag backscatters nothing there).
	tspTrain := r.trace.Start("sic_train")
	spTrain := r.m.spanSICTrain.Start()
	canc, err := sic.Train(r.cfg.SIC, xTap, x, y, packetStart, packetStart+tag.SilentSamples)
	spTrain.End()
	tspTrain.End()
	if err != nil {
		r.m.failSICTrain.Inc()
		return nil, fmt.Errorf("reader: %w", err)
	}
	tspCancel := r.trace.Start("sic_cancel")
	spCancel := r.m.spanSICCancel.Start()
	clean := canc.Cancel(xTap, x, y)
	spCancel.End()
	tspCancel.End()

	// Stage 2: combined-channel estimation from the tag preamble.
	preStart := packetStart + tag.SilentSamples
	preEnd := preStart + tcfg.PreambleSamples()
	if preEnd > packetStart+packetLen {
		r.m.failPreamble.Inc()
		return nil, fmt.Errorf("reader: packet too short for tag preamble")
	}
	pn := tag.PreambleSequence(tcfg.ID, tcfg.PreambleChips)
	tspEst := r.trace.Start("channel_estimate")
	spEst := r.m.spanChanEst.Start()
	hfb, err := r.estimateHfb(x, clean, preStart, pn)
	spEst.End()
	tspEst.End()
	if err != nil {
		r.m.failChanEst.Inc()
		return nil, err
	}

	// Reference signal: what the backscatter looks like for unit
	// modulation. The buffer is reused when the timing search below
	// re-estimates the channel.
	ref := dsp.ConvolveSameInto(nil, x, hfb)

	// Symbol timing: search around the nominal position using the PN
	// matched filter, re-estimating the channel at each winner until
	// the grid settles (a badly misaligned first estimate flattens the
	// metric, so one pass can stop short of the true offset).
	tspTiming := r.trace.Start("timing_search")
	spTiming := r.m.spanTiming.Start()
	offset := 0
	for pass := 0; pass < 3; pass++ {
		step := r.searchTiming(clean, ref, preStart, pn)
		if step == 0 {
			break
		}
		offset += step
		preStart += step
		preEnd += step
		if h2, err := r.estimateHfb(x, clean, preStart, pn); err == nil {
			hfb = h2
			ref = dsp.ConvolveSameInto(ref, x, hfb)
		}
	}
	spTiming.End()
	tspTiming.End()
	if offset != 0 {
		r.m.timingAdjusted.Inc()
	}
	r.m.timingOffset.Observe(math.Abs(float64(offset)))

	// Preamble sanity: chip-wise MRC against the known PN.
	preCorr := r.preambleCorrelation(clean, ref, preStart, pn)
	r.m.preambleCorr.Observe(preCorr)

	// Stage 3: per-symbol MRC (paper Eq. 7).
	tspMRC := r.trace.Start("mrc")
	spMRC := r.m.spanMRC.Start()
	symStart := preEnd
	sps := tcfg.SamplesPerSymbol()
	guard := r.cfg.ChannelTaps
	if guard > sps/2 {
		guard = sps / 2
	}
	nAvail := (packetStart + packetLen - symStart) / sps
	if nAvail <= 0 {
		r.m.failPayload.Inc()
		return nil, fmt.Errorf("reader: no room for payload symbols")
	}
	ests := make([]complex128, nAvail)
	for s := 0; s < nAvail; s++ {
		a := symStart + s*sps + guard
		b := symStart + (s+1)*sps
		var num complex128
		var den float64
		for n := a; n < b; n++ {
			num += clean[n] * cmplx.Conj(ref[n])
			den += real(ref[n])*real(ref[n]) + imag(ref[n])*imag(ref[n])
		}
		if den > 0 {
			ests[s] = num / complex(den, 0)
		}
	}

	spMRC.End()
	tspMRC.End()

	// Stage 4: demap, Viterbi, deframe. The frame's own length header
	// tells us where the payload symbols end; symbols after the frame
	// are the tag's post-frame silence and are discarded by the
	// length-aware decode.
	tspVit := r.trace.Start("viterbi")
	spVit := r.m.spanViterbi.Start()
	payload, used, corrected, frameOK := r.decodeFrame(ests, tcfg)
	spVit.End()
	tspVit.End()
	if frameOK {
		r.m.viterbiBits.Observe(float64(corrected))
	} else {
		r.m.failFrameCRC.Inc()
	}

	res := &Result{
		Payload:              payload,
		FrameOK:              frameOK,
		SymbolEstimates:      ests,
		SIC:                  canc.Report(),
		Hfb:                  hfb,
		PreambleCorr:         preCorr,
		TimingOffset:         offset,
		ViterbiCorrectedBits: corrected,
	}
	res.SNRdB = symbolSNRdB(ests[:used], tcfg.Mod)
	return res, nil
}

// estimateHfb solves least squares for the combined channel using
// preamble samples where the PN chip is constant across the whole
// channel span (so y[n] = chip · (x⊛h_fb)[n] exactly).
func (r *Reader) estimateHfb(x, clean []complex128, preStart int, pn []complex128) ([]complex128, error) {
	L := r.cfg.ChannelTaps
	var rows []int
	for c := range pn {
		chipStart := preStart + c*tag.ChipSamples
		for n := chipStart + L - 1; n < chipStart+tag.ChipSamples; n++ {
			rows = append(rows, n)
		}
	}
	if len(rows) < 2*L {
		return nil, fmt.Errorf("reader: only %d usable preamble samples for %d taps", len(rows), L)
	}
	a := linalg.NewMatrix(len(rows), L)
	b := make([]complex128, len(rows))
	for ri, n := range rows {
		chip := pn[(n-preStart)/tag.ChipSamples]
		for k := 0; k < L; k++ {
			if idx := n - k; idx >= 0 {
				a.Set(ri, k, chip*x[idx])
			}
		}
		b[ri] = clean[n]
	}
	hfb, err := linalg.LeastSquares(a, b, r.cfg.Lambda)
	if err != nil {
		return nil, fmt.Errorf("reader: channel estimate: %w", err)
	}
	return hfb, nil
}

// searchTiming slides the chip grid ±TimingSearch samples around the
// nominal preamble start and returns the offset with the strongest PN
// correlation. The coarse channel estimate (made at nominal timing) is
// good enough to rank candidates because most chip samples still carry
// a constant chip within the search range.
func (r *Reader) searchTiming(clean, ref []complex128, preStart int, pn []complex128) int {
	if r.cfg.TimingSearch <= 0 {
		return 0
	}
	nominal := r.timingMetric(clean, ref, preStart, pn)
	best, bestOff := nominal, 0
	for off := -r.cfg.TimingSearch; off <= r.cfg.TimingSearch; off++ {
		if off == 0 || preStart+off < 0 {
			continue
		}
		if m := r.timingMetric(clean, ref, preStart+off, pn); m > best {
			best, bestOff = m, off
		}
	}
	// Only move off the protocol timing for a clear win: near-flat
	// metric around the nominal position means the channel estimate
	// already absorbed any small delay, and moving the MRC grid would
	// only misalign short symbols.
	if best < nominal*1.05 {
		return 0
	}
	return bestOff
}

// timingMetric is the matched-filter energy of the preamble at a
// candidate chip-grid position: the real part of the chip-wise MRC
// numerators projected onto the known PN. Unlike the normalized
// correlation it decays when the grid is misaligned (part of every
// window then carries the wrong chip), so it peaks at true timing.
func (r *Reader) timingMetric(clean, ref []complex128, preStart int, pn []complex128) float64 {
	guard := r.cfg.ChannelTaps
	if guard >= tag.ChipSamples {
		guard = tag.ChipSamples / 2
	}
	var acc complex128
	for c, chip := range pn {
		a := preStart + c*tag.ChipSamples + guard
		b := preStart + (c+1)*tag.ChipSamples
		var num complex128
		for n := a; n < b && n < len(clean); n++ {
			if n < 0 {
				continue
			}
			num += clean[n] * cmplx.Conj(ref[n])
		}
		acc += num * cmplx.Conj(chip)
	}
	return real(acc)
}

// preambleCorrelation MRC-decodes each preamble chip and correlates
// with the expected PN.
func (r *Reader) preambleCorrelation(clean, ref []complex128, preStart int, pn []complex128) float64 {
	guard := r.cfg.ChannelTaps
	if guard >= tag.ChipSamples {
		guard = tag.ChipSamples / 2
	}
	var acc complex128
	var norm float64
	for c, chip := range pn {
		a := preStart + c*tag.ChipSamples + guard
		b := preStart + (c+1)*tag.ChipSamples
		var num complex128
		var den float64
		for n := a; n < b && n < len(clean); n++ {
			num += clean[n] * cmplx.Conj(ref[n])
			den += real(ref[n])*real(ref[n]) + imag(ref[n])*imag(ref[n])
		}
		if den > 0 {
			est := num / complex(den, 0)
			acc += est * cmplx.Conj(chip)
			norm += cmplx.Abs(est)
		}
	}
	if norm == 0 {
		return 0
	}
	return cmplx.Abs(acc) / norm
}

// decodeFrame runs soft demapping and FEC over symbol estimates,
// reading the frame length from the decoded header. It returns the
// payload (nil on failure), the number of symbols the frame occupied,
// the number of coded bits the Viterbi decoder corrected (0 unless the
// frame validated), and whether the CRC validated.
func (r *Reader) decodeFrame(ests []complex128, tcfg tag.Config) ([]byte, int, int, bool) {
	soft := tcfg.Mod.DemapSoft(ests)
	// First pass: unterminated Viterbi over everything to read the
	// length header.
	steps := maxTrellisSteps(len(soft), tcfg.Coding)
	if steps < 16+fec.TailBits {
		return nil, len(ests), 0, false
	}
	need := fec.PuncturedLength(2*steps, tcfg.Coding)
	mother, err := fec.Depuncture(soft[:need], tcfg.Coding, 2*steps)
	if err != nil {
		return nil, len(ests), 0, false
	}
	bits, err := fec.ViterbiDecode(mother, false)
	if err != nil {
		return nil, len(ests), 0, false
	}
	n := int(bits[0]) | int(bits[1])<<1 | int(bits[2])<<2 | int(bits[3])<<3 |
		int(bits[4])<<4 | int(bits[5])<<5 | int(bits[6])<<6 | int(bits[7])<<7 |
		int(bits[8])<<8 | int(bits[9])<<9 | int(bits[10])<<10 | int(bits[11])<<11 |
		int(bits[12])<<12 | int(bits[13])<<13 | int(bits[14])<<14 | int(bits[15])<<15
	infoBits := tag.FrameInfoBits(n)
	used := tag.SymbolsForPayload(n, tcfg.Coding, tcfg.Mod)
	if used > len(ests) {
		return nil, len(ests), 0, false
	}
	// Second pass: terminated decode over exactly the frame's symbols.
	frameSoft := soft[:used*tcfg.Mod.BitsPerSymbol()]
	payload, err := tag.DecodeFrameBits(frameSoft, tcfg.Coding, infoBits)
	if err != nil {
		return nil, used, 0, false
	}
	return payload, used, correctedBits(frameSoft, payload, tcfg), true
}

// correctedBits counts the coded-bit flips the Viterbi decoder fixed:
// hard decisions on the received soft values vs the re-encoded decoded
// frame. This is the receiver-side error tally — unlike RawBER it
// needs no ground truth, so it works on real payloads.
func correctedBits(frameSoft []float64, payload []byte, tcfg tag.Config) int {
	reenc := tag.EncodeFrameBits(payload, tcfg.Coding, tcfg.Mod)
	n := min(len(reenc), len(frameSoft))
	count := 0
	for i := 0; i < n; i++ {
		// Soft convention: positive → bit 0, negative → bit 1.
		var hard byte
		if frameSoft[i] < 0 {
			hard = 1
		}
		if hard != reenc[i] {
			count++
		}
	}
	return count
}

// maxTrellisSteps returns the largest trellis step count whose
// punctured length fits in softLen values.
func maxTrellisSteps(softLen int, coding fec.CodeRate) int {
	lo, hi := 0, softLen // punctured length >= steps, so steps <= softLen
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if fec.PuncturedLength(2*mid, coding) <= softLen {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// symbolSNRdB estimates post-MRC SNR from decision errors.
func symbolSNRdB(ests []complex128, mod tag.Modulation) float64 {
	if len(ests) == 0 {
		return math.Inf(-1)
	}
	hard := mod.DemapHard(ests)
	ideal := mod.MapBits(hard)
	// PSK decisions are phase-only; reference each decision at the
	// packet's mean estimate amplitude so both phase and amplitude
	// deviations count as noise.
	var meanMag float64
	for _, e := range ests {
		meanMag += cmplx.Abs(e)
	}
	meanMag /= float64(len(ests))
	var sig, noise float64
	for i := range ests {
		ref := ideal[i] * complex(meanMag, 0)
		d := ests[i] - ref
		sig += meanMag * meanMag
		noise += real(d)*real(d) + imag(d)*imag(d)
	}
	if noise == 0 {
		return math.Inf(1)
	}
	return dsp.DB(sig / noise)
}
