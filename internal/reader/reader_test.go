package reader

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"backfi/internal/channel"
	"backfi/internal/dsp"
	"backfi/internal/fec"
	"backfi/internal/sic"
	"backfi/internal/tag"
)

// buildScene synthesizes a complete received packet without the core
// package: white excitation, known channels, a modulating tag.
type scene struct {
	x, y        []complex128
	packetStart int
	packetLen   int
	tcfg        tag.Config
	plan        *tag.TxPlan
	payload     []byte
}

func buildScene(t *testing.T, seed int64, tcfg tag.Config, payloadN int, bsGainDB float64) *scene {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tg, err := tag.New(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, payloadN)
	r.Read(payload)

	need := tag.SilentSamples + tcfg.PreambleSamples() +
		tag.SymbolsForPayload(payloadN, tcfg.Coding, tcfg.Mod)*tcfg.SamplesPerSymbol() + 400
	txW := dsp.UnDBm(20)
	sigma := math.Sqrt(txW / 2)
	x := make([]complex128, 500+need)
	for i := range x {
		x[i] = complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
	}
	packetStart := 500
	packetLen := len(x) - packetStart

	henv := channel.RayleighTaps(r, 8, 0.5).Scale(-20)
	hf := channel.RicianTaps(r, 3, 10, 0.5).Scale(bsGainDB / 2)
	hb := channel.RicianTaps(r, 3, 10, 0.5).Scale(bsGainDB / 2)

	m, plan, err := tg.ModulationSequence(packetLen, payload)
	if err != nil {
		t.Fatal(err)
	}
	mFull := make([]complex128, len(x))
	copy(mFull[packetStart:], m)
	z := hf.Apply(x)
	bs := hb.Apply(tag.Backscatter(z, mFull))
	noise := channel.NewAWGN(r, channel.ThermalNoiseW(20e6, 6))
	y := noise.Add(dsp.Add(henv.Apply(x), bs))
	return &scene{x: x, y: y, packetStart: packetStart, packetLen: packetLen, tcfg: tcfg, plan: plan, payload: payload}
}

func qpskCfg() tag.Config {
	return tag.Config{Mod: tag.QPSK, Coding: fec.Rate12, SymbolRateHz: 1e6, PreambleChips: 32, ID: 2}
}

func TestDecodeRecoversPayload(t *testing.T) {
	sc := buildScene(t, 1, qpskCfg(), 80, -70)
	rd := mustNew(DefaultConfig())
	res, err := rd.Decode(sc.x, sc.x, sc.y, sc.packetStart, sc.packetLen, sc.tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FrameOK {
		t.Fatal("frame should validate")
	}
	if !bytes.Equal(res.Payload, sc.payload) {
		t.Fatal("payload differs")
	}
	if res.PreambleCorr < 0.95 {
		t.Fatalf("preamble correlation %v", res.PreambleCorr)
	}
}

func TestDecodeSymbolEstimatesMatchGroundTruth(t *testing.T) {
	sc := buildScene(t, 2, qpskCfg(), 40, -65)
	rd := mustNew(DefaultConfig())
	res, err := rd.Decode(sc.x, sc.x, sc.y, sc.packetStart, sc.packetLen, sc.tcfg)
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i, want := range sc.plan.Symbols {
		got := res.SymbolEstimates[i]
		// Phase distance under half the decision boundary.
		d := dsp.WrapPhase(phase(got) - phase(want))
		if math.Abs(d) > math.Pi/4 {
			errs++
		}
	}
	if errs > len(sc.plan.Symbols)/100 {
		t.Fatalf("%d/%d symbol estimates off", errs, len(sc.plan.Symbols))
	}
}

func phase(c complex128) float64 { return math.Atan2(imag(c), real(c)) }

func TestDecodeAllTagModulations(t *testing.T) {
	for _, mod := range tag.Modulations {
		cfg := qpskCfg()
		cfg.Mod = mod
		sc := buildScene(t, 3, cfg, 40, -60)
		rd := mustNew(DefaultConfig())
		res, err := rd.Decode(sc.x, sc.x, sc.y, sc.packetStart, sc.packetLen, cfg)
		if err != nil {
			t.Fatalf("%v: %v", mod, err)
		}
		if !res.FrameOK || !bytes.Equal(res.Payload, sc.payload) {
			t.Fatalf("%v: decode failed", mod)
		}
	}
}

func TestDecodeFailsGracefullyAtVeryLowSNR(t *testing.T) {
	// Backscatter far below the noise floor even after MRC: the frame
	// must fail CRC, not crash or return a false positive.
	sc := buildScene(t, 4, qpskCfg(), 80, -145)
	rd := mustNew(DefaultConfig())
	res, err := rd.Decode(sc.x, sc.x, sc.y, sc.packetStart, sc.packetLen, sc.tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FrameOK && bytes.Equal(res.Payload, sc.payload) {
		t.Fatal("decode should not succeed 20 dB below the noise floor")
	}
}

func TestDecodeArgumentErrors(t *testing.T) {
	rd := mustNew(DefaultConfig())
	sc := buildScene(t, 5, qpskCfg(), 8, -60)
	if _, err := rd.Decode(sc.x[:10], sc.x[:10], sc.y, sc.packetStart, sc.packetLen, sc.tcfg); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := rd.Decode(sc.x, sc.x, sc.y, sc.packetStart, len(sc.x), sc.tcfg); err == nil {
		t.Fatal("expected out-of-range packet error")
	}
	bad := sc.tcfg
	bad.SymbolRateHz = 0
	if _, err := rd.Decode(sc.x, sc.x, sc.y, sc.packetStart, sc.packetLen, bad); err == nil {
		t.Fatal("expected tag config error")
	}
	short := sc.tcfg
	if _, err := rd.Decode(sc.x, sc.x, sc.y, sc.packetStart, tag.SilentSamples+10, short); err == nil {
		t.Fatal("expected too-short-for-preamble error")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cases := []Config{
		{ChannelTaps: 0, SIC: sic.DefaultConfig()},
		{ChannelTaps: 8, Lambda: -1, SIC: sic.DefaultConfig()},
		{ChannelTaps: 8, TimingSearch: -1, SIC: sic.DefaultConfig()},
		{ChannelTaps: 8}, // zero SIC config: digital stage missing
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: expected error for %+v", i, cfg)
		}
	}
}

func TestHfbEstimateQuality(t *testing.T) {
	// The estimated combined channel convolved with x must predict the
	// unit-modulation backscatter accurately.
	r := rand.New(rand.NewSource(6))
	tcfg := qpskCfg()
	sc := buildScene(t, 6, tcfg, 40, -60)
	rd := mustNew(DefaultConfig())
	res, err := rd.Decode(sc.x, sc.x, sc.y, sc.packetStart, sc.packetLen, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	// Synthesize a fresh excitation and compare predictions from the
	// estimate vs a re-derived truth: instead, check the estimate is
	// stable across two decodes with independent noise.
	sc2 := buildScene(t, 6, tcfg, 40, -60) // same seed → same channels
	res2, err := rd.Decode(sc2.x, sc2.x, sc2.y, sc2.packetStart, sc2.packetLen, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	var diff, ref float64
	for i := range res.Hfb {
		d := res.Hfb[i] - res2.Hfb[i]
		diff += real(d)*real(d) + imag(d)*imag(d)
		ref += real(res.Hfb[i])*real(res.Hfb[i]) + imag(res.Hfb[i])*imag(res.Hfb[i])
	}
	if ref == 0 || diff/ref > 1e-6 {
		t.Fatalf("channel estimate unstable: rel diff %v", diff/ref)
	}
	_ = r
}

func TestDecodeZeroLengthPayloadFrame(t *testing.T) {
	sc := buildScene(t, 7, qpskCfg(), 0, -60)
	rd := mustNew(DefaultConfig())
	res, err := rd.Decode(sc.x, sc.x, sc.y, sc.packetStart, sc.packetLen, sc.tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FrameOK || len(res.Payload) != 0 {
		t.Fatalf("empty frame decode: ok=%v payload=%v", res.FrameOK, res.Payload)
	}
}

func TestMaxTrellisSteps(t *testing.T) {
	for _, coding := range []fec.CodeRate{fec.Rate12, fec.Rate23, fec.Rate34} {
		for _, softLen := range []int{10, 48, 100, 333} {
			steps := maxTrellisSteps(softLen, coding)
			if fec.PuncturedLength(2*steps, coding) > softLen {
				t.Fatalf("%v/%d: steps %d overflow", coding, softLen, steps)
			}
			if fec.PuncturedLength(2*(steps+1), coding) <= softLen {
				t.Fatalf("%v/%d: steps %d not maximal", coding, softLen, steps)
			}
		}
	}
}

func TestSymbolSNREstimator(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	// Clean QPSK points → very high SNR; noisy → near the true value.
	bits := make([]byte, 400)
	for i := range bits {
		bits[i] = byte(r.Intn(2))
	}
	pts := tag.QPSK.MapBits(bits)
	if snr := symbolSNRdB(pts, tag.QPSK); snr < 60 {
		t.Fatalf("clean SNR %v", snr)
	}
	noisy := make([]complex128, len(pts))
	sigma := math.Sqrt(dsp.UnDB(-15) / 2)
	for i := range pts {
		noisy[i] = pts[i] + complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
	}
	snr := symbolSNRdB(noisy, tag.QPSK)
	if math.Abs(snr-15) > 2.5 {
		t.Fatalf("noisy SNR %v, want ≈15", snr)
	}
	if !math.IsInf(symbolSNRdB(nil, tag.QPSK), -1) {
		t.Fatal("empty estimate should be -Inf")
	}
}
