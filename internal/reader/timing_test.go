package reader

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"backfi/internal/channel"
	"backfi/internal/dsp"
	"backfi/internal/tag"
)

// buildSceneWithOffset is buildScene with the tag's modulation grid
// shifted late by offset samples (a slow tag comparator clock).
func buildSceneWithOffset(t *testing.T, seed int64, tcfg tag.Config, payloadN, offset int) *scene {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tg, err := tag.New(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, payloadN)
	r.Read(payload)

	need := tag.SilentSamples + tcfg.PreambleSamples() +
		tag.SymbolsForPayload(payloadN, tcfg.Coding, tcfg.Mod)*tcfg.SamplesPerSymbol() + 400 + offset
	txW := dsp.UnDBm(20)
	sigma := math.Sqrt(txW / 2)
	x := make([]complex128, 500+need)
	for i := range x {
		x[i] = complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
	}
	packetStart := 500
	packetLen := len(x) - packetStart

	henv := channel.RayleighTaps(r, 8, 0.5).Scale(-20)
	hf := channel.RicianTaps(r, 3, 10, 0.5).Scale(-30)
	hb := channel.RicianTaps(r, 3, 10, 0.5).Scale(-30)

	m, plan, err := tg.ModulationSequence(packetLen-offset, payload)
	if err != nil {
		t.Fatal(err)
	}
	mFull := make([]complex128, len(x))
	copy(mFull[packetStart+offset:], m) // tag runs `offset` samples late
	z := hf.Apply(x)
	bs := hb.Apply(tag.Backscatter(z, mFull))
	noise := channel.NewAWGN(r, channel.ThermalNoiseW(20e6, 6))
	y := noise.Add(dsp.Add(henv.Apply(x), bs))
	return &scene{x: x, y: y, packetStart: packetStart, packetLen: packetLen, tcfg: tcfg, plan: plan, payload: payload}
}

func TestTimingSearchRecoversLateTag(t *testing.T) {
	// The tag starts 12 samples late (just over half a preamble-chip's
	// guard region). With the PN timing search the decode succeeds and
	// reports the offset; without it the symbol grid is misaligned.
	tcfg := qpskCfg()
	sc := buildSceneWithOffset(t, 11, tcfg, 60, 12)

	cfg := DefaultConfig()
	cfg.TimingSearch = 16
	withSearch := mustNew(cfg)
	res, err := withSearch.Decode(sc.x, sc.x, sc.y, sc.packetStart, sc.packetLen, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FrameOK || !bytes.Equal(res.Payload, sc.payload) {
		t.Fatalf("decode with timing search failed (offset found: %d)", res.TimingOffset)
	}
	// The decoder may split the 12-sample delay between the grid shift
	// and the channel estimate's own taps (up to ChannelTaps−1 samples
	// of delay fit inside h_fb), so any combination that covers the
	// majority of the offset is correct.
	if res.TimingOffset < 5 || res.TimingOffset > 16 {
		t.Fatalf("timing offset %d, want 5–16 (12 minus tap absorption)", res.TimingOffset)
	}

	cfg.TimingSearch = 0
	noSearch := mustNew(cfg)
	res0, err := noSearch.Decode(sc.x, sc.x, sc.y, sc.packetStart, sc.packetLen, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res0.SNRdB >= res.SNRdB {
		t.Fatalf("search should improve SNR on a late tag: %v vs %v", res0.SNRdB, res.SNRdB)
	}
}

func TestTimingSearchStaysPutWhenAligned(t *testing.T) {
	// With an on-time tag the search must not wander: a wrong move
	// would misalign short symbols.
	tcfg := qpskCfg()
	sc := buildScene(t, 12, tcfg, 60, -60)
	res, err := mustNew(DefaultConfig()).Decode(sc.x, sc.x, sc.y, sc.packetStart, sc.packetLen, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimingOffset != 0 {
		t.Fatalf("timing offset %d on an aligned tag", res.TimingOffset)
	}
	if !res.FrameOK {
		t.Fatal("aligned decode failed")
	}
}
