package reader

import (
	"fmt"
	"math/cmplx"

	"backfi/internal/dsp"
	"backfi/internal/sic"
	"backfi/internal/tag"
)

// Joint successive cancellation of colliding tag reflections
// (DESIGN.md §5i). When the multi-tag MAC lights a whole group with
// one excitation, the AP receives the superposition of every group
// member's backscatter. Self-interference cancellation removes the
// excitation itself exactly as in the single-tag chain — training
// happens in the shared silent window, where no tag modulates — but
// what remains is a sum of reflections, each the excitation convolved
// with that tag's h_f⊛h_b and multiplied by its modulation sequence.
//
// DecodeJoint peels them off strongest-first, reusing the single-tag
// machinery per layer:
//
//  1. estimate every remaining tag's combined channel from its own PN
//     preamble (the PN sequences are nearly orthogonal, so each LS fit
//     latches onto its own reflection; the others average into the
//     noise floor),
//  2. decode the strongest reflection by MRC + Viterbi exactly as the
//     single-tag path does,
//  3. rebuild that tag's transmitted modulation — exact re-encode when
//     the CRC validated, hard symbol decisions otherwise — cancel
//     m̂[n]·(x⊛ĥ)[n] out of the residual, and
//  4. repeat on what is left.
//
// The cancellation reference deliberately uses the PREAMBLE-ONLY
// channel estimate. Refining ĥ against the reconstructed payload
// symbols looks attractive (far more LS rows) but is subtly wrong in a
// collision: the payload symbol sequences of different tags are not
// orthogonal — two tags reporting similar readings modulate nearly
// identical symbols — so the regressors m̂·x of the layer being fit
// correlate with the *other* layers' reflections, and the fit absorbs a
// fraction of their channels into ĥ. Cancelling with that biased
// estimate subtracts part of the weaker tags' own signal and caps the
// achievable cancellation depth near the inter-layer correlation
// (~10 dB for same-format payloads) no matter the SNR. The PN
// preambles are the one segment guaranteed pairwise-uncorrelated by
// construction, so the preamble fit is the one that stays unbiased.
//
// Timing search is skipped: group members are slot-synchronized by the
// protocol (they all wake on the same burst), so the nominal timing is
// shared and a per-layer search could tear the layers apart.

// JointResult is the outcome of jointly decoding one collided
// excitation.
type JointResult struct {
	// Tags holds each tag's decode, aligned with the cfgs argument. An
	// entry is nil only when its channel estimate was unusable (e.g. no
	// preamble room); failed CRCs still carry a Result with FrameOK
	// false.
	Tags []*Result
	// Order lists indices into cfgs in cancellation order — Order[0]
	// was the strongest reflection.
	Order []int
	// ResidualDBm[k] is the post-SIC residual power over the frame
	// window after cancelling Order[:k+1] — the joint-decode analogue
	// of the SIC report's residual, it should fall with every layer.
	ResidualDBm []float64
	// SIC is the (shared) self-interference cancellation report.
	SIC sic.Report
}

// DecodeJoint decodes every tag in cfgs from one received excitation.
// Arguments mirror Decode; all tags share packetStart timing.
func (r *Reader) DecodeJoint(x, xTap, y []complex128, packetStart, packetLen int, cfgs []tag.Config) (*JointResult, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("reader: joint decode of zero tags")
	}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}
	if len(x) != len(y) || len(xTap) != len(y) {
		return nil, fmt.Errorf("reader: x/xTap/y length mismatch %d/%d/%d", len(x), len(xTap), len(y))
	}
	if packetStart+packetLen > len(x) {
		return nil, fmt.Errorf("reader: packet [%d,%d) exceeds %d samples", packetStart, packetStart+packetLen, len(x))
	}

	// Shared stage 1: one SIC train/cancel for the whole group.
	tspTrain := r.trace.Start("sic_train")
	spTrain := r.m.spanSICTrain.Start()
	canc, err := sic.Train(r.cfg.SIC, xTap, x, y, packetStart, packetStart+tag.SilentSamples)
	spTrain.End()
	tspTrain.End()
	if err != nil {
		r.m.failSICTrain.Inc()
		return nil, fmt.Errorf("reader: %w", err)
	}
	tspCancel := r.trace.Start("sic_cancel")
	spCancel := r.m.spanSICCancel.Start()
	clean := canc.Cancel(xTap, x, y)
	spCancel.End()
	tspCancel.End()

	preStart := packetStart + tag.SilentSamples
	jr := &JointResult{Tags: make([]*Result, len(cfgs)), SIC: canc.Report()}

	remaining := make([]int, 0, len(cfgs))
	for i := range cfgs {
		remaining = append(remaining, i)
	}
	for len(remaining) > 0 {
		// Rank the remaining reflections by estimated received energy
		// over their preamble windows.
		best, bestE := -1, 0.0
		var bestHfb, bestRef []complex128
		next := remaining[:0]
		for _, i := range remaining {
			tcfg := cfgs[i]
			if preStart+tcfg.PreambleSamples() > packetStart+packetLen {
				r.m.failPreamble.Inc()
				next = append(next, i) // skipped permanently below
				continue
			}
			pn := tag.PreambleSequence(tcfg.ID, tcfg.PreambleChips)
			tspEst := r.trace.Start("channel_estimate")
			spEst := r.m.spanChanEst.Start()
			hfb, err := r.estimateHfb(x, clean, preStart, pn)
			spEst.End()
			tspEst.End()
			if err != nil {
				r.m.failChanEst.Inc()
				next = append(next, i)
				continue
			}
			ref := dsp.ConvolveSameInto(nil, x, hfb)
			var e float64
			for n := preStart; n < preStart+tcfg.PreambleSamples(); n++ {
				e += real(ref[n])*real(ref[n]) + imag(ref[n])*imag(ref[n])
			}
			if best == -1 || e > bestE {
				if best != -1 {
					next = append(next, best)
				}
				best, bestE, bestHfb, bestRef = i, e, hfb, ref
			} else {
				next = append(next, i)
			}
		}
		if best == -1 {
			// Nothing estimable this round; the survivors never will be
			// (the residual only shrinks). Leave their entries nil.
			break
		}
		remaining = next

		tcfg := cfgs[best]
		res, used := r.decodeLayer(clean, bestRef, packetStart, packetLen, preStart, tcfg)
		res.SIC = jr.SIC
		res.Hfb = bestHfb
		jr.Tags[best] = res
		jr.Order = append(jr.Order, best)

		if len(remaining) > 0 {
			mseq, frameEnd := reconstructModulation(res, used, preStart, tcfg)
			for n := preStart; n < frameEnd && n < len(clean); n++ {
				clean[n] -= mseq[n-preStart] * bestRef[n]
			}
		}
		jr.ResidualDBm = append(jr.ResidualDBm, residualDBm(clean, preStart, packetStart+packetLen))
	}
	return jr, nil
}

// decodeLayer is stages 3–4 of the single-tag chain (MRC + Viterbi)
// against the current residual, at nominal protocol timing. The second
// return is the symbol count the frame occupied — the cancellation
// bound when the CRC failed and the payload length is untrusted.
func (r *Reader) decodeLayer(clean, ref []complex128, packetStart, packetLen, preStart int, tcfg tag.Config) (*Result, int) {
	pn := tag.PreambleSequence(tcfg.ID, tcfg.PreambleChips)
	preEnd := preStart + tcfg.PreambleSamples()
	preCorr := r.preambleCorrelation(clean, ref, preStart, pn)
	r.m.preambleCorr.Observe(preCorr)

	tspMRC := r.trace.Start("mrc")
	spMRC := r.m.spanMRC.Start()
	sps := tcfg.SamplesPerSymbol()
	guard := r.cfg.ChannelTaps
	if guard > sps/2 {
		guard = sps / 2
	}
	nAvail := (packetStart + packetLen - preEnd) / sps
	if nAvail <= 0 {
		r.m.failPayload.Inc()
		spMRC.End()
		tspMRC.End()
		return &Result{PreambleCorr: preCorr}, 0
	}
	ests := make([]complex128, nAvail)
	for s := 0; s < nAvail; s++ {
		a := preEnd + s*sps + guard
		b := preEnd + (s+1)*sps
		var num complex128
		var den float64
		for n := a; n < b; n++ {
			num += clean[n] * cmplx.Conj(ref[n])
			den += real(ref[n])*real(ref[n]) + imag(ref[n])*imag(ref[n])
		}
		if den > 0 {
			ests[s] = num / complex(den, 0)
		}
	}
	spMRC.End()
	tspMRC.End()

	tspVit := r.trace.Start("viterbi")
	spVit := r.m.spanViterbi.Start()
	payload, used, corrected, frameOK := r.decodeFrame(ests, tcfg)
	spVit.End()
	tspVit.End()
	if frameOK {
		r.m.viterbiBits.Observe(float64(corrected))
	} else {
		r.m.failFrameCRC.Inc()
	}
	res := &Result{
		Payload:              payload,
		FrameOK:              frameOK,
		SymbolEstimates:      ests,
		PreambleCorr:         preCorr,
		ViterbiCorrectedBits: corrected,
	}
	res.SNRdB = symbolSNRdB(ests[:used], tcfg.Mod)
	return res, used
}

// reconstructModulation rebuilds the per-sample modulation m̂[n] the
// decoded tag transmitted over [preStart, frameEnd): PN chips, then
// payload symbols — exact when the CRC validated (re-encode), hard
// symbol decisions over the frame's symbols otherwise.
func reconstructModulation(res *Result, used, preStart int, tcfg tag.Config) ([]complex128, int) {
	pn := tag.PreambleSequence(tcfg.ID, tcfg.PreambleChips)
	sps := tcfg.SamplesPerSymbol()
	var symbols []complex128
	if res.FrameOK {
		coded := tag.EncodeFrameBits(res.Payload, tcfg.Coding, tcfg.Mod)
		symbols = tcfg.Mod.MapBits(coded)
	} else {
		if used > len(res.SymbolEstimates) {
			used = len(res.SymbolEstimates)
		}
		hard := tcfg.Mod.DemapHard(res.SymbolEstimates[:used])
		symbols = tcfg.Mod.MapBits(hard)
	}
	n := tcfg.PreambleSamples() + len(symbols)*sps
	mseq := make([]complex128, n)
	for c, chip := range pn {
		for k := 0; k < tag.ChipSamples; k++ {
			mseq[c*tag.ChipSamples+k] = chip
		}
	}
	off := tcfg.PreambleSamples()
	for s, sym := range symbols {
		for k := 0; k < sps; k++ {
			mseq[off+s*sps+k] = sym
		}
	}
	return mseq, preStart + n
}

// residualDBm is the power of the remaining signal over the tag frame
// window, in dBm.
func residualDBm(clean []complex128, lo, hi int) float64 {
	if hi > len(clean) {
		hi = len(clean)
	}
	if lo >= hi {
		return dsp.DBm(0)
	}
	return dsp.DBm(dsp.Power(clean[lo:hi]))
}
