package reader

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"backfi/internal/channel"
	"backfi/internal/dsp"
	"backfi/internal/tag"
)

// buildMultiScene synthesizes a two-antenna received packet.
func buildMultiScene(t *testing.T, seed int64, tcfg tag.Config, payloadN int, bsGainDB float64) (*scene, [][]complex128) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tg, err := tag.New(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, payloadN)
	r.Read(payload)

	need := tag.SilentSamples + tcfg.PreambleSamples() +
		tag.SymbolsForPayload(payloadN, tcfg.Coding, tcfg.Mod)*tcfg.SamplesPerSymbol() + 400
	txW := dsp.UnDBm(20)
	sigma := math.Sqrt(txW / 2)
	x := make([]complex128, 500+need)
	for i := range x {
		x[i] = complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
	}
	packetStart := 500
	packetLen := len(x) - packetStart

	hf := channel.RicianTaps(r, 3, 10, 0.5).Scale(bsGainDB / 2)
	m, plan, err := tg.ModulationSequence(packetLen, payload)
	if err != nil {
		t.Fatal(err)
	}
	mFull := make([]complex128, len(x))
	copy(mFull[packetStart:], m)
	reflected := tag.Backscatter(hf.Apply(x), mFull)

	noise := channel.NewAWGN(r, channel.ThermalNoiseW(20e6, 6))
	var ys [][]complex128
	for a := 0; a < 2; a++ {
		henv := channel.RayleighTaps(r, 8, 0.5).Scale(-20)
		hb := channel.RicianTaps(r, 3, 10, 0.5).Scale(bsGainDB / 2)
		ys = append(ys, noise.Add(dsp.Add(henv.Apply(x), hb.Apply(reflected))))
	}
	return &scene{x: x, packetStart: packetStart, packetLen: packetLen, tcfg: tcfg, plan: plan, payload: payload}, ys
}

func TestDecodeMultiRecoversPayload(t *testing.T) {
	sc, ys := buildMultiScene(t, 1, qpskCfg(), 60, -70)
	rd := mustNew(DefaultConfig())
	res, err := rd.DecodeMulti(sc.x, sc.x, ys, sc.packetStart, sc.packetLen, sc.tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FrameOK || !bytes.Equal(res.Payload, sc.payload) {
		t.Fatal("two-antenna decode failed")
	}
	if len(res.PerAntennaSIC) != 2 || len(res.PerAntennaSNRdB) != 2 {
		t.Fatal("per-antenna diagnostics missing")
	}
	// Joint SNR at least matches the best single chain minus noise.
	best := math.Max(res.PerAntennaSNRdB[0], res.PerAntennaSNRdB[1])
	if res.SNRdB < best-3 {
		t.Fatalf("joint SNR %v far below best chain %v", res.SNRdB, best)
	}
}

func TestDecodeMultiValidation(t *testing.T) {
	sc, ys := buildMultiScene(t, 2, qpskCfg(), 8, -60)
	rd := mustNew(DefaultConfig())
	if _, err := rd.DecodeMulti(sc.x, sc.x, nil, sc.packetStart, sc.packetLen, sc.tcfg); err == nil {
		t.Fatal("expected error for no antennas")
	}
	short := [][]complex128{ys[0][:10]}
	if _, err := rd.DecodeMulti(sc.x, sc.x, short, sc.packetStart, sc.packetLen, sc.tcfg); err == nil {
		t.Fatal("expected error for length mismatch")
	}
	bad := sc.tcfg
	bad.SymbolRateHz = 0
	if _, err := rd.DecodeMulti(sc.x, sc.x, ys, sc.packetStart, sc.packetLen, bad); err == nil {
		t.Fatal("expected tag config error")
	}
	if _, err := rd.DecodeMulti(sc.x, sc.x, ys, sc.packetStart, tag.SilentSamples+10, sc.tcfg); err == nil {
		t.Fatal("expected too-short error")
	}
}
