package reader

import (
	"fmt"
	"math"
	"math/cmplx"

	"backfi/internal/dsp"
	"backfi/internal/fec"
	"backfi/internal/linalg"
	"backfi/internal/sic"
	"backfi/internal/tag"
)

// headerGuardSteps is how far past the 16-bit length header the
// bounded first Viterbi pass extends before tracing back. Several
// constraint lengths of lookahead make the unterminated traceback of
// the header bits as reliable as the legacy full-frame pass at the
// SNRs where frames decode at all.
const headerGuardSteps = 8 * fec.TailBits

// Stream is the serving hot path's per-session decoder. It wraps a
// Reader with state that amortizes across frames of one session:
//
//   - a sic.Reusable canceller retrained every frame with no
//     steady-state allocation;
//   - clean/reference/estimate scratch buffers reused across calls;
//   - normal-equation scratch for the combined-channel estimate;
//   - windowed processing: instead of cancelling and correlating over
//     the whole capture, it processes [packetStart, header) first,
//     reads the frame length from a bounded Viterbi pass, and extends
//     the window to exactly the samples the frame occupies.
//
// Results are deterministic for identical inputs but NOT bit-identical
// to Reader.Decode: the fast canceller assembles its normal equations
// in a different summation order, and symbol estimates stop at the
// frame boundary instead of covering the tag's post-frame silence
// (Result.SymbolEstimates holds only the frame's symbols). The fast
// serve path pins its own determinism contract (DESIGN.md §5g).
//
// Slices in a returned Result (SymbolEstimates, Hfb) alias the
// stream's scratch and are valid only until the next Decode call;
// Payload is freshly allocated. Not safe for concurrent use.
type Stream struct {
	r    *Reader
	canc *sic.Reusable

	clean []complex128
	ref   []complex128
	ests  []complex128
	gram  *linalg.Matrix
	rhs   []complex128
	hfb   []complex128
}

// NewStream returns a session-scoped streaming decoder sharing r's
// configuration and metrics.
func (r *Reader) NewStream() (*Stream, error) {
	canc, err := sic.NewReusable(r.cfg.SIC)
	if err != nil {
		return nil, err
	}
	L := r.cfg.ChannelTaps
	return &Stream{
		r:    r,
		canc: canc,
		gram: linalg.NewMatrix(L, L),
		rhs:  make([]complex128, L),
		hfb:  make([]complex128, L),
	}, nil
}

// Decode processes one excitation packet with the same stage structure
// and arguments as Reader.Decode, reusing the stream's cached state.
func (s *Stream) Decode(x, xTap, y []complex128, packetStart, packetLen int, tcfg tag.Config) (*Result, error) {
	r := s.r
	if err := tcfg.Validate(); err != nil {
		return nil, err
	}
	if len(x) != len(y) || len(xTap) != len(y) {
		return nil, fmt.Errorf("reader: x/xTap/y length mismatch %d/%d/%d", len(x), len(xTap), len(y))
	}
	if packetStart+packetLen > len(x) {
		return nil, fmt.Errorf("reader: packet [%d,%d) exceeds %d samples", packetStart, packetStart+packetLen, len(x))
	}

	// Stage 1: retrain the reusable canceller on the silent window.
	tr := r.trace
	s.canc.SetTrace(tr)
	tspTrain := tr.Start("sic_train")
	spTrain := r.m.spanSICTrain.Start()
	err := s.canc.Retrain(xTap, x, y, packetStart, packetStart+tag.SilentSamples)
	spTrain.End()
	tspTrain.End()
	if err != nil {
		r.m.failSICTrain.Inc()
		return nil, fmt.Errorf("reader: %w", err)
	}

	preStart := packetStart + tag.SilentSamples
	preEnd := preStart + tcfg.PreambleSamples()
	packetEnd := packetStart + packetLen
	if preEnd > packetEnd {
		r.m.failPreamble.Inc()
		return nil, fmt.Errorf("reader: packet too short for tag preamble")
	}

	// Initial window: silent + preamble + timing slack + enough payload
	// symbols for the bounded header pass.
	sps := tcfg.SamplesPerSymbol()
	bps := tcfg.Mod.BitsPerSymbol()
	headerSoft := fec.PuncturedLength(2*(16+headerGuardSteps), tcfg.Coding)
	headerSyms := (headerSoft + bps - 1) / bps
	hi := preEnd + r.cfg.TimingSearch + headerSyms*sps
	if hi > packetEnd {
		hi = packetEnd
	}
	tspCancel := tr.Start("sic_cancel")
	spCancel := r.m.spanSICCancel.Start()
	s.clean = s.canc.CancelRange(s.clean, xTap, x, y, packetStart, hi)
	spCancel.End()
	tspCancel.End()

	// Stage 2: channel estimation + timing, windowed.
	pn := tag.PreambleSequence(tcfg.ID, tcfg.PreambleChips)
	tspEst := tr.Start("channel_estimate")
	spEst := r.m.spanChanEst.Start()
	err = s.estimateHfbInto(x, s.clean, preStart, pn)
	spEst.End()
	tspEst.End()
	if err != nil {
		r.m.failChanEst.Inc()
		return nil, err
	}
	s.ref = dsp.ConvolveRangeInto(s.ref, x, s.hfb, packetStart, hi)

	tspTiming := tr.Start("timing_search")
	spTiming := r.m.spanTiming.Start()
	offset := 0
	for pass := 0; pass < 3; pass++ {
		step := r.searchTiming(s.clean, s.ref, preStart, pn)
		if step == 0 {
			break
		}
		offset += step
		preStart += step
		preEnd += step
		if err := s.estimateHfbInto(x, s.clean, preStart, pn); err == nil {
			s.ref = dsp.ConvolveRangeInto(s.ref, x, s.hfb, packetStart, hi)
		}
	}
	spTiming.End()
	tspTiming.End()
	if offset != 0 {
		r.m.timingAdjusted.Inc()
	}
	r.m.timingOffset.Observe(math.Abs(float64(offset)))

	preCorr := r.preambleCorrelation(s.clean, s.ref, preStart, pn)
	r.m.preambleCorr.Observe(preCorr)

	// Stage 3a: MRC over just the header symbols.
	symStart := preEnd
	guard := min(r.cfg.ChannelTaps, sps/2)
	nAvail := (packetEnd - symStart) / sps
	if nAvail <= 0 {
		r.m.failPayload.Inc()
		return nil, fmt.Errorf("reader: no room for payload symbols")
	}
	nHdr := min(headerSyms, nAvail)
	tspMRC := tr.Start("mrc")
	spMRC := r.m.spanMRC.Start()
	if cap(s.ests) < nAvail {
		s.ests = make([]complex128, nAvail)
	}
	s.mrcInto(symStart, sps, guard, 0, nHdr)
	spMRC.End()
	tspMRC.End()

	// Stage 3b: bounded header pass → frame extent.
	tspVit := tr.Start("viterbi")
	spVit := r.m.spanViterbi.Start()
	used, infoBits, headerOK := s.frameExtent(s.ests[:nHdr], tcfg)
	spVit.End()
	tspVit.End()
	nSyms := used
	if !headerOK || used > nAvail {
		// A frame we cannot size (noise, or a length header pointing past
		// the packet). Fall back to the legacy whole-capture behavior so
		// failures are diagnosed identically: process everything and let
		// decodeFrame report the failure.
		nSyms = nAvail
	}

	// Extend the processing window to exactly the frame's samples.
	hi2 := symStart + nSyms*sps
	if hi2 > hi {
		tspCancel := tr.Start("sic_cancel")
		spCancel := r.m.spanSICCancel.Start()
		s.clean = s.canc.CancelRange(s.clean, xTap, x, y, hi, hi2)
		s.ref = dsp.ConvolveRangeInto(s.ref, x, s.hfb, hi, hi2)
		spCancel.End()
		tspCancel.End()
	}
	tspMRC = tr.Start("mrc")
	spMRC = r.m.spanMRC.Start()
	s.mrcInto(symStart, sps, guard, nHdr, nSyms)
	spMRC.End()
	tspMRC.End()
	ests := s.ests[:nSyms]

	// Stage 4: terminated decode over the frame symbols.
	tspVit = tr.Start("viterbi")
	spVit = r.m.spanViterbi.Start()
	var payload []byte
	var corrected int
	frameOK := false
	if headerOK && used <= nAvail {
		frameSoft := tcfg.Mod.DemapSoft(ests)
		if p, err := tag.DecodeFrameBits(frameSoft[:used*bps], tcfg.Coding, infoBits); err == nil {
			payload = p
			corrected = correctedBits(frameSoft[:used*bps], payload, tcfg)
			frameOK = true
		}
	} else {
		payload, used, corrected, frameOK = r.decodeFrame(ests, tcfg)
	}
	spVit.End()
	tspVit.End()
	if frameOK {
		r.m.viterbiBits.Observe(float64(corrected))
	} else {
		r.m.failFrameCRC.Inc()
	}

	res := &Result{
		Payload:              payload,
		FrameOK:              frameOK,
		SymbolEstimates:      ests,
		SIC:                  s.canc.Report(),
		Hfb:                  s.hfb,
		PreambleCorr:         preCorr,
		TimingOffset:         offset,
		ViterbiCorrectedBits: corrected,
	}
	res.SNRdB = symbolSNRdB(ests[:min(used, len(ests))], tcfg.Mod)
	return res, nil
}

// mrcInto fills s.ests[from:to) with the per-symbol MRC estimates
// (paper Eq. 7) from the stream's clean/ref buffers.
func (s *Stream) mrcInto(symStart, sps, guard, from, to int) {
	clean, ref := s.clean, s.ref
	for sym := from; sym < to; sym++ {
		a := symStart + sym*sps + guard
		b := symStart + (sym+1)*sps
		var num complex128
		var den float64
		for n := a; n < b; n++ {
			num += clean[n] * cmplx.Conj(ref[n])
			den += real(ref[n])*real(ref[n]) + imag(ref[n])*imag(ref[n])
		}
		if den > 0 {
			s.ests[sym] = num / complex(den, 0)
		} else {
			s.ests[sym] = 0
		}
	}
}

// frameExtent runs the bounded first Viterbi pass over the header
// symbols and returns the frame's symbol count and info-bit length.
// ok is false when the header cannot be read from the given symbols.
func (s *Stream) frameExtent(hdrEsts []complex128, tcfg tag.Config) (used, infoBits int, ok bool) {
	soft := tcfg.Mod.DemapSoft(hdrEsts)
	steps := maxTrellisSteps(len(soft), tcfg.Coding)
	if steps < 16+fec.TailBits {
		return 0, 0, false
	}
	need := fec.PuncturedLength(2*steps, tcfg.Coding)
	mother, err := fec.Depuncture(soft[:need], tcfg.Coding, 2*steps)
	if err != nil {
		return 0, 0, false
	}
	bits, err := fec.ViterbiDecode(mother, false)
	if err != nil {
		return 0, 0, false
	}
	n := 0
	for i := 0; i < 16; i++ {
		n |= int(bits[i]) << uint(i)
	}
	return tag.SymbolsForPayload(n, tcfg.Coding, tcfg.Mod), tag.FrameInfoBits(n), true
}

// estimateHfbInto solves the same preamble least-squares problem as
// estimateHfb, assembling the normal equations directly into reused
// scratch instead of materializing the convolution matrix. The
// solution lands in s.hfb. Sum order differs from the legacy
// estimator, so taps agree to solver precision, not bit-for-bit.
func (s *Stream) estimateHfbInto(x, clean []complex128, preStart int, pn []complex128) error {
	L := s.r.cfg.ChannelTaps
	g := s.gram
	for i := range g.Data {
		g.Data[i] = 0
	}
	for i := range s.rhs {
		s.rhs[i] = 0
	}
	rows := 0
	for c, chip := range pn {
		chipStart := preStart + c*tag.ChipSamples
		cc := real(chip)*real(chip) + imag(chip)*imag(chip)
		for n := chipStart + L - 1; n < chipStart+tag.ChipSamples; n++ {
			rows++
			// Row k of the design matrix is chip·x[n-k]; accumulate
			// AᴴA (upper triangle) and Aᴴb without building A.
			chipY := cmplx.Conj(chip) * clean[n]
			for k := 0; k < L; k++ {
				xk := x[n-k]
				cxk := cmplx.Conj(xk)
				s.rhs[k] += cxk * chipY
				row := g.Data[k*L:]
				for l := k; l < L; l++ {
					row[l] += complex(cc, 0) * cxk * x[n-l]
				}
			}
		}
	}
	if rows < 2*L {
		return fmt.Errorf("reader: only %d usable preamble samples for %d taps", rows, L)
	}
	for k := 0; k < L; k++ {
		for l := 0; l < k; l++ {
			g.Data[k*L+l] = cmplx.Conj(g.Data[l*L+k])
		}
	}
	copy(s.hfb, s.rhs)
	if err := linalg.SolveHermitianInPlace(g, s.hfb, s.r.cfg.Lambda); err != nil {
		return fmt.Errorf("reader: channel estimate: %w", err)
	}
	return nil
}
