package reader

// mustNew builds a Reader from a config the test knows is valid (New
// returns errors since the panic-free API refactor).
func mustNew(cfg Config) *Reader {
	r, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return r
}
