package reader

import (
	"fmt"
	"math/cmplx"

	"backfi/internal/dsp"
	"backfi/internal/sic"
	"backfi/internal/tag"
)

// MultiResult extends Result with per-antenna diagnostics.
type MultiResult struct {
	Result
	// PerAntennaSIC reports each receive chain's cancellation.
	PerAntennaSIC []sic.Report
	// PerAntennaSNRdB is each antenna's standalone post-MRC symbol SNR
	// (diagnostic; the payload is decoded from the joint combine).
	PerAntennaSNRdB []float64
}

// DecodeMulti decodes one tag transmission received on multiple AP
// antennas — the paper's Sec. 7 extension. Each receive chain runs its
// own self-interference cancellation and combined-channel estimate;
// the per-symbol MRC then combines across time *and* antennas,
// providing spatial diversity gain on top of the temporal gain.
//
// ys[i] is antenna i's received stream, aligned with x.
func (r *Reader) DecodeMulti(x, xTap []complex128, ys [][]complex128, packetStart, packetLen int, tcfg tag.Config) (*MultiResult, error) {
	if err := tcfg.Validate(); err != nil {
		return nil, err
	}
	if len(ys) == 0 {
		return nil, fmt.Errorf("reader: no receive antennas")
	}
	preStart := packetStart + tag.SilentSamples
	preEnd := preStart + tcfg.PreambleSamples()
	if preEnd > packetStart+packetLen {
		return nil, fmt.Errorf("reader: packet too short for tag preamble")
	}
	if packetStart+packetLen > len(x) {
		return nil, fmt.Errorf("reader: packet [%d,%d) exceeds %d samples", packetStart, packetStart+packetLen, len(x))
	}

	pn := tag.PreambleSequence(tcfg.ID, tcfg.PreambleChips)
	cleans := make([][]complex128, len(ys))
	refs := make([][]complex128, len(ys))
	out := &MultiResult{}
	for i, y := range ys {
		if len(y) != len(x) {
			return nil, fmt.Errorf("reader: antenna %d length %d vs %d", i, len(y), len(x))
		}
		canc, err := sic.Train(r.cfg.SIC, xTap, x, y, packetStart, packetStart+tag.SilentSamples)
		if err != nil {
			return nil, fmt.Errorf("reader: antenna %d: %w", i, err)
		}
		clean := canc.Cancel(xTap, x, y)
		hfb, err := r.estimateHfb(x, clean, preStart, pn)
		if err != nil {
			return nil, fmt.Errorf("reader: antenna %d: %w", i, err)
		}
		cleans[i] = clean
		refs[i] = dsp.ConvolveSame(x, hfb)
		out.PerAntennaSIC = append(out.PerAntennaSIC, canc.Report())
		if i == 0 {
			// Symbol timing from the first chain's PN matched filter
			// (the tag's clock is common to all antennas), with
			// channel re-estimation at the winner, as in Decode.
			for pass := 0; pass < 3; pass++ {
				step := r.searchTiming(clean, refs[0], preStart, pn)
				if step == 0 {
					break
				}
				out.TimingOffset += step
				preStart += step
				preEnd += step
				if h2, err := r.estimateHfb(x, clean, preStart, pn); err == nil {
					hfb = h2
					refs[0] = dsp.ConvolveSame(x, hfb)
				}
			}
			out.Hfb = hfb
			out.SIC = canc.Report()
			out.PreambleCorr = r.preambleCorrelation(clean, refs[0], preStart, pn)
		} else if out.TimingOffset != 0 {
			// Re-estimate this chain at the corrected timing.
			if h2, err := r.estimateHfb(x, clean, preStart, pn); err == nil {
				refs[i] = dsp.ConvolveSame(x, h2)
			}
		}
	}

	// Joint per-symbol MRC across antennas.
	sps := tcfg.SamplesPerSymbol()
	guard := r.cfg.ChannelTaps
	if guard > sps/2 {
		guard = sps / 2
	}
	symStart := preEnd
	nAvail := (packetStart + packetLen - symStart) / sps
	if nAvail <= 0 {
		return nil, fmt.Errorf("reader: no room for payload symbols")
	}
	ests := make([]complex128, nAvail)
	perAnt := make([][]complex128, len(ys))
	for i := range perAnt {
		perAnt[i] = make([]complex128, nAvail)
	}
	for s := 0; s < nAvail; s++ {
		a := symStart + s*sps + guard
		b := symStart + (s+1)*sps
		var num complex128
		var den float64
		for i := range ys {
			var ni complex128
			var di float64
			for n := a; n < b; n++ {
				ni += cleans[i][n] * cmplx.Conj(refs[i][n])
				di += real(refs[i][n])*real(refs[i][n]) + imag(refs[i][n])*imag(refs[i][n])
			}
			num += ni
			den += di
			if di > 0 {
				perAnt[i][s] = ni / complex(di, 0)
			}
		}
		if den > 0 {
			ests[s] = num / complex(den, 0)
		}
	}

	payload, used, corrected, frameOK := r.decodeFrame(ests, tcfg)
	out.Payload = payload
	out.FrameOK = frameOK
	out.ViterbiCorrectedBits = corrected
	out.SymbolEstimates = ests
	out.SNRdB = symbolSNRdB(ests[:used], tcfg.Mod)
	for i := range perAnt {
		out.PerAntennaSNRdB = append(out.PerAntennaSNRdB, symbolSNRdB(perAnt[i][:used], tcfg.Mod))
	}
	return out, nil
}
