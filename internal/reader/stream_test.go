package reader

import (
	"bytes"
	"math/cmplx"
	"testing"

	"backfi/internal/fec"
	"backfi/internal/tag"
)

func mustStream(t *testing.T, rd *Reader) *Stream {
	t.Helper()
	s, err := rd.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStreamDecodeMatchesReader(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  tag.Config
		seed int64
	}{
		{"qpsk", qpskCfg(), 41},
		{"psk16-fast", tag.Config{Mod: tag.PSK16, Coding: fec.Rate23, SymbolRateHz: 2.5e6, PreambleChips: 32, ID: 2}, 42},
		{"bpsk-slow", tag.Config{Mod: tag.BPSK, Coding: fec.Rate12, SymbolRateHz: 500e3, PreambleChips: 32, ID: 2}, 43},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc := buildScene(t, tc.seed, tc.cfg, 40, -65)
			rd := mustNew(DefaultConfig())
			want, err := rd.Decode(sc.x, sc.x, sc.y, sc.packetStart, sc.packetLen, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			st := mustStream(t, rd)
			got, err := st.Decode(sc.x, sc.x, sc.y, sc.packetStart, sc.packetLen, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !got.FrameOK || !want.FrameOK {
				t.Fatalf("frame OK: stream %v, reader %v", got.FrameOK, want.FrameOK)
			}
			if !bytes.Equal(got.Payload, want.Payload) || !bytes.Equal(got.Payload, sc.payload) {
				t.Fatal("payload differs between stream and reader decode")
			}
			if got.TimingOffset != want.TimingOffset {
				t.Fatalf("timing offset: stream %d, reader %d", got.TimingOffset, want.TimingOffset)
			}
			// The stream's symbol estimates cover exactly the frame; the
			// legacy decoder also estimates the post-frame silence. Over
			// the shared prefix the two pipelines differ only by normal-
			// equation summation order.
			if len(got.SymbolEstimates) > len(want.SymbolEstimates) {
				t.Fatalf("stream produced %d estimates, reader %d", len(got.SymbolEstimates), len(want.SymbolEstimates))
			}
			for i, g := range got.SymbolEstimates {
				if d := cmplx.Abs(g - want.SymbolEstimates[i]); d > 1e-3 {
					t.Fatalf("symbol %d: stream %v vs reader %v (|Δ|=%g)", i, g, want.SymbolEstimates[i], d)
				}
			}
		})
	}
}

func TestStreamDecodeDeterministicAcrossReuse(t *testing.T) {
	// The same stream instance must produce identical results for the
	// same input regardless of what it decoded before — scratch reuse
	// must never leak state between frames.
	scA := buildScene(t, 51, qpskCfg(), 40, -65)
	scB := buildScene(t, 52, qpskCfg(), 24, -60)
	rd := mustNew(DefaultConfig())

	fresh := mustStream(t, rd)
	refA, err := fresh.Decode(scA.x, scA.x, scA.y, scA.packetStart, scA.packetLen, scA.tcfg)
	if err != nil {
		t.Fatal(err)
	}
	refEsts := append([]complex128(nil), refA.SymbolEstimates...)

	reused := mustStream(t, rd)
	if _, err := reused.Decode(scB.x, scB.x, scB.y, scB.packetStart, scB.packetLen, scB.tcfg); err != nil {
		t.Fatal(err)
	}
	again, err := reused.Decode(scA.x, scA.x, scA.y, scA.packetStart, scA.packetLen, scA.tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Payload, refA.Payload) || again.FrameOK != refA.FrameOK {
		t.Fatal("reused stream decoded a different payload")
	}
	if len(again.SymbolEstimates) != len(refEsts) {
		t.Fatalf("estimate count %d vs %d", len(again.SymbolEstimates), len(refEsts))
	}
	for i := range refEsts {
		if again.SymbolEstimates[i] != refEsts[i] {
			t.Fatalf("symbol %d not bit-identical across stream reuse", i)
		}
	}
	if again.SNRdB != refA.SNRdB || again.PreambleCorr != refA.PreambleCorr {
		t.Fatal("scalar results not bit-identical across stream reuse")
	}
}

func TestStreamDecodeLowSNRFailsGracefully(t *testing.T) {
	sc := buildScene(t, 53, qpskCfg(), 80, -145)
	rd := mustNew(DefaultConfig())
	st := mustStream(t, rd)
	res, err := st.Decode(sc.x, sc.x, sc.y, sc.packetStart, sc.packetLen, sc.tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FrameOK {
		t.Fatal("buried-in-noise frame must not validate")
	}
	if res.Payload != nil {
		t.Fatal("failed frame must carry no payload")
	}
}

func TestStreamDecodeArgumentErrors(t *testing.T) {
	sc := buildScene(t, 54, qpskCfg(), 16, -60)
	rd := mustNew(DefaultConfig())
	st := mustStream(t, rd)
	if _, err := st.Decode(sc.x, sc.x, sc.y[:len(sc.y)-1], sc.packetStart, sc.packetLen, sc.tcfg); err == nil {
		t.Fatal("want length-mismatch error")
	}
	if _, err := st.Decode(sc.x, sc.x, sc.y, sc.packetStart, len(sc.x), sc.tcfg); err == nil {
		t.Fatal("want out-of-range packet error")
	}
	bad := sc.tcfg
	bad.SymbolRateHz = 0
	if _, err := st.Decode(sc.x, sc.x, sc.y, sc.packetStart, sc.packetLen, bad); err == nil {
		t.Fatal("want tag-config validation error")
	}
}
