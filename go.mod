module backfi

go 1.22
