// Command backfi-readerd is the long-running BackFi reader daemon: it
// accepts decode jobs (session id + application frame) over a
// length-prefixed TCP protocol — legacy JSON frames or the zero-copy
// binary framing, negotiated per connection from the first byte, so no
// protocol flag is needed here — shards session state by id across a
// fixed worker pool, and serves with production discipline — bounded
// queues with typed backpressure, per-job deadlines, panic isolation,
// and graceful drain on SIGINT/SIGTERM. See DESIGN.md §5e for the wire
// protocol and determinism contract.
//
// Example:
//
//	backfi-readerd -addr localhost:8337 -shards 8 -metrics-addr localhost:9090
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"backfi/internal/core"
	"backfi/internal/fault"
	"backfi/internal/obs"
	"backfi/internal/parallel"
	"backfi/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("backfi-readerd: ")

	addr := flag.String("addr", "localhost:8337", "TCP listen address (host:0 picks an ephemeral port)")
	shards := flag.Int("shards", 4, "session-state shards; a session id always decodes on the same shard")
	queue := flag.Int("queue", 64, "per-shard job queue bound; a full queue rejects with queue_full")
	batch := flag.Int("batch", 16, "max queued jobs drained into one parallel decode batch")
	batchWorkers := flag.Int("batch-workers", 0, "decode concurrency inside one batch: 0 = all CPUs (results are identical for every value)")
	distance := flag.Float64("distance", 1, "AP-tag distance in meters of the session link template")
	rho := flag.Float64("rho", 0.95, "packet-to-packet channel correlation of each session")
	retries := flag.Int("retries", 2, "per-frame ARQ retry budget")
	seed := flag.Int64("seed", 1, "base seed; each session offsets it by a hash of its id")
	sessionCache := flag.Bool("session-cache", false, "cache per-session excitation and SIC scratch across frames (DESIGN.md §5g; changes the RNG draw schedule vs. uncached serving)")
	impair := flag.Float64("impair", 0, "RF impairment severity in [0,1]: 0 = the paper's ideal front end (DESIGN.md §5d)")
	adapt := flag.Bool("adapt", false, "closed-loop rate adaptation: each session walks the configuration ladder with hysteresis (DESIGN.md §5f)")
	minSymRate := flag.Float64("min-symrate", 0, "with -adapt, restrict the ladder to symbol rates ≥ this (slow rungs cost real decode CPU; 0 keeps all 36)")
	timeline := flag.String("timeline", "", "scripted fault timeline frame:severity[,frame:severity...] applied per session (overrides -impair; empty = none)")
	wildTimeline := flag.String("wild-timeline", "", "like -timeline but severities map through Wild instead of Standard: the tag picks up walking speed (Doppler fading) and moderate RF impairments (DESIGN.md §5k; mutually exclusive with -timeline)")
	energy := flag.Bool("energy", false, "energy-aware poll scheduler: each session carries a deterministic supercap tank; polls on a dark tag are answered tag_dark with truncated-exponential probe backoff and resume gap-free on wake (DESIGN.md §5k; incompatible with -handoff)")
	harvestSev := flag.Float64("harvest-severity", 0, "harvest scarcity in [0,1] for the session tanks: 0 = every 5 ms slot banks the full ambient harvest, 1 = every slot is scarce (implies -energy when > 0)")
	wdAfter := flag.Int("watchdog-after", 0, "SIC-health watchdog: consecutive unhealthy frames before a session degrades to the robust configuration (0 disables)")
	wdResidual := flag.Float64("watchdog-residual", -80, "SIC residual threshold in dBm above which a frame counts unhealthy")
	wdRecover := flag.Int("watchdog-recover", 0, "consecutive healthy frames to lift degraded mode (0 = default 8)")
	jobTimeout := flag.Duration("job-timeout", 0, "default per-job deadline measured from admission (0 = none)")
	sessionTTL := flag.Duration("session-ttl", 0, "evict sessions idle longer than this; each shard sweeps its own map (0 keeps sessions forever)")
	handoff := flag.Bool("handoff", false, "cluster mode: attach a portable session snapshot to every decode response and accept handoff installs, so a cluster client can move sessions between nodes with no stream divergence (DESIGN.md §5j; all nodes of one cluster must run identical configs)")
	mtImpostor := flag.Bool("multitag-impostor", false, "add an unpolled impostor tag to every multi-tag session (adversarial collisions, DESIGN.md §5i)")
	mtMax := flag.Int("multitag-max", 0, "max payloads per mdecode group (0 = default 8)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long graceful shutdown waits for admitted jobs")
	metricsAddr := flag.String("metrics-addr", "", "serve the ops surface on ADDR: /metrics, /healthz, /readyz, /debug/trace, /debug/flightrecorder, /debug/pprof/ (e.g. localhost:9090)")
	traceSample := flag.Int("trace-sample", 0, "head-sample 1/N decode frames into the span ring (0 disables tracing, 1 traces every frame)")
	traceSeed := flag.Int64("trace-seed", 0, "trace sampling seed; a client with the same seed derives identical ids (0 = the -seed value)")
	flightOut := flag.String("flight-out", "", "arm the flight recorder's anomaly auto-dump to this JSON file (watchdog trips, panics, SIGTERM)")
	sloDelivery := flag.Float64("slo-delivery", 0.9, "SLO delivery objective: minimum delivered fraction over the rolling window")
	sloLatency := flag.Duration("slo-latency", 25*time.Millisecond, "SLO latency objective: p99 per-frame serving latency bound")
	sloWindow := flag.Duration("slo-window", time.Minute, "SLO rolling evaluation window")
	flag.Parse()

	link := core.DefaultLinkConfig(*distance)
	link.Seed = *seed
	if *impair < 0 || *impair > 1 {
		log.Fatalf("impair: severity %v outside [0,1]", *impair)
	}
	if *impair > 0 {
		p := fault.Standard(*impair)
		if err := p.Validate(); err != nil {
			log.Fatalf("impair: %v", err)
		}
		link.Faults = &p
	}
	var tl *fault.Timeline
	if *timeline != "" && *wildTimeline != "" {
		log.Fatal("-timeline and -wild-timeline are mutually exclusive")
	}
	if *timeline != "" {
		var err error
		if tl, err = fault.ParseTimeline(*timeline); err != nil {
			log.Fatalf("timeline: %v", err)
		}
	}
	if *wildTimeline != "" {
		var err error
		if tl, err = fault.ParseWildTimeline(*wildTimeline); err != nil {
			log.Fatalf("wild-timeline: %v", err)
		}
	}
	if *harvestSev > 0 {
		*energy = true
	}

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		parallel.SetRegistry(reg)
	}
	var tracer *obs.Tracer
	if *traceSample > 0 {
		ts := *traceSeed
		if ts == 0 {
			ts = *seed
		}
		tracer = obs.NewTracer(obs.TracerConfig{Seed: ts, SampleEvery: *traceSample})
	}
	flight := obs.NewFlightRecorder(0)
	if *flightOut != "" {
		flight.SetDumpPath(*flightOut)
	}
	slo := obs.NewSLO(obs.SLOConfig{
		Window:              *sloWindow,
		DeliveryObjective:   *sloDelivery,
		LatencyObjectiveSec: sloLatency.Seconds(),
		Obs:                 reg,
	})

	srv, err := serve.NewServer(serve.Config{
		Addr:         *addr,
		Link:         link,
		CoherenceRho: *rho,
		MaxRetries:   *retries,
		Shards:       *shards,
		QueueDepth:   *queue,
		BatchMax:     *batch,
		BatchWorkers: *batchWorkers,
		SessionCache: *sessionCache,
		JobTimeout:   *jobTimeout,
		DrainTimeout: *drainTimeout,
		SessionTTL:   *sessionTTL,
		Handoff:      *handoff,

		MultiTagImpostor: *mtImpostor,
		MultiTagMax:      *mtMax,

		Adapt:                *adapt,
		AdaptMinSymbolRateHz: *minSymRate,
		Timeline:             tl,
		WatchdogAfter:        *wdAfter,
		WatchdogResidualDBm:  *wdResidual,
		WatchdogRecover:      *wdRecover,

		Energy:         *energy,
		EnergySeverity: *harvestSev,

		Obs:    reg,
		Tracer: tracer,
		Flight: flight,
		SLO:    slo,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	if *metricsAddr != "" {
		_, bound, err := obs.ServeOps(*metricsAddr, obs.ServeOpts{
			Registry: reg,
			Tracer:   tracer,
			Flight:   flight,
			SLO:      slo,
			Ready:    func() bool { return !srv.Draining() },
		})
		if err != nil {
			log.Fatalf("metrics-addr: %v", err)
		}
		log.Printf("ops: http://%s/metrics  health: http://%s/healthz  pprof: http://%s/debug/pprof/", bound, bound, bound)
	}
	log.Printf("listening on %s (shards=%d queue=%d batch=%d distance=%.2gm)",
		srv.Addr(), *shards, *queue, *batch, *distance)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	flight.Anomaly(obs.FlightSigterm, "", s.String(), 0)
	log.Printf("%s: draining (new jobs rejected, admitted jobs finishing)...", s)
	if err := srv.Shutdown(context.Background()); err != nil {
		log.Fatalf("drain incomplete: %v", err)
	}
	log.Printf("drained cleanly")
}
