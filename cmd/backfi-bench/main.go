// Command backfi-bench regenerates the tables and figures of the
// BackFi paper's evaluation (Sec. 6) and prints them in the paper's
// layout. Use -fig to select one, or run everything.
//
// Example:
//
//	backfi-bench -fig 8 -trials 10
//	backfi-bench -all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"backfi/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("backfi-bench: ")

	fig := flag.String("fig", "", "figure to regenerate: 7, 8, 9, 10, 11a, 11b, 12a, 12b, 13, headline, ablation (empty = all)")
	trials := flag.Int("trials", 5, "Monte-Carlo trials per point")
	seed := flag.Int64("seed", 1, "random seed")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	flag.Parse()

	opt := experiments.Options{Trials: *trials, Seed: *seed}
	figs := []string{"7", "8", "9", "10", "11a", "11b", "12a", "12b", "13", "headline", "ablation", "excitation", "mimo"}
	if *fig != "" {
		figs = []string{*fig}
	}
	if *jsonOut {
		report := map[string]any{}
		for _, f := range figs {
			data, err := runData(f, opt)
			if err != nil {
				log.Fatalf("fig %s: %v", f, err)
			}
			report["fig"+f] = data
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			log.Fatal(err)
		}
		return
	}
	for _, f := range figs {
		start := time.Now()
		out, err := run(f, opt)
		if err != nil {
			log.Fatalf("fig %s: %v", f, err)
		}
		fmt.Printf("=== Figure %s (%.1fs) ===\n%s\n", f, time.Since(start).Seconds(), out)
	}
}

// runData returns the typed rows of one figure for JSON output.
func runData(fig string, opt experiments.Options) (any, error) {
	switch fig {
	case "7":
		return experiments.Fig7()
	case "8":
		return experiments.Fig8(opt)
	case "9":
		return experiments.Fig9(opt)
	case "10":
		return experiments.Fig10(opt)
	case "11a":
		return experiments.Fig11a(30, opt.Trials, opt)
	case "11b":
		return experiments.Fig11b(opt)
	case "12a":
		return experiments.Fig12a(20, opt)
	case "12b":
		return experiments.Fig12b(5, opt)
	case "13":
		return experiments.Fig13(opt)
	case "headline":
		return experiments.Headline(opt)
	case "ablation":
		return experiments.Ablations(opt)
	case "excitation":
		return experiments.ExcitationComparison(opt)
	case "mimo":
		return experiments.MIMOExtension(opt)
	}
	return nil, fmt.Errorf("unknown figure %q", fig)
}

func run(fig string, opt experiments.Options) (string, error) {
	switch fig {
	case "7":
		rows, err := experiments.Fig7()
		if err != nil {
			return "", err
		}
		return experiments.RenderFig7(rows), nil
	case "8":
		rows, err := experiments.Fig8(opt)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig8(rows), nil
	case "9":
		curves, err := experiments.Fig9(opt)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig9(curves), nil
	case "10":
		rows, err := experiments.Fig10(opt)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig10(rows), nil
	case "11a":
		res, err := experiments.Fig11a(30, opt.Trials, opt)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig11a(res), nil
	case "11b":
		rows, err := experiments.Fig11b(opt)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig11b(rows), nil
	case "12a":
		res, err := experiments.Fig12a(20, opt)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig12a(res), nil
	case "12b":
		rows, err := experiments.Fig12b(5, opt)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig12b(rows), nil
	case "13":
		rows, err := experiments.Fig13(opt)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig13(rows), nil
	case "headline":
		h, err := experiments.Headline(opt)
		if err != nil {
			return "", err
		}
		return experiments.RenderHeadline(h), nil
	case "ablation":
		rows, err := experiments.Ablations(opt)
		if err != nil {
			return "", err
		}
		return experiments.RenderAblations(rows), nil
	case "excitation":
		rows, err := experiments.ExcitationComparison(opt)
		if err != nil {
			return "", err
		}
		return experiments.RenderExcitation(rows), nil
	case "mimo":
		rows, err := experiments.MIMOExtension(opt)
		if err != nil {
			return "", err
		}
		return experiments.RenderMIMO(rows), nil
	}
	return "", fmt.Errorf("unknown figure %q", fig)
}
