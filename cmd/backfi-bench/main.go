// Command backfi-bench regenerates the tables and figures of the
// BackFi paper's evaluation (Sec. 6) and prints them in the paper's
// layout. Use -fig to select one, or run everything.
//
// Example:
//
//	backfi-bench -fig 8 -trials 10
//	backfi-bench -all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"backfi/internal/experiments"
	"backfi/internal/fault"
	"backfi/internal/obs"
	"backfi/internal/parallel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("backfi-bench: ")

	fig := flag.String("fig", "", "figure to regenerate: 7, 8, 9, 10, 11a, 11b, 12a, 12b, 13, headline, ablation, excitation, mimo, robustness, wild (empty = all)")
	trials := flag.Int("trials", 5, "Monte-Carlo trials per point")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "evaluation concurrency: 0 = all CPUs, 1 = sequential (results are identical for every value)")
	impair := flag.Float64("impair", 0, "RF impairment severity in [0,1]: 0 = the paper's ideal front end, >0 runs every figure under fault.Standard(severity) (DESIGN.md §5d)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	benchOut := flag.String("benchout", "", "write per-figure headline metrics + wall-clock seconds to this JSON file (e.g. BENCH_results.json)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus text on ADDR/metrics and pprof on ADDR/debug/pprof/ while running (e.g. localhost:9090)")
	manifestOut := flag.String("manifest", "", "write a per-run manifest (config, seed, build info, per-figure wall clock + headline metric, final metric snapshot) to this JSON file")
	flag.Parse()

	opt := experiments.Options{Trials: *trials, Seed: *seed, Workers: *workers}
	if *impair < 0 || *impair > 1 {
		log.Fatalf("impair: severity %v outside [0,1]", *impair)
	}
	if *impair > 0 {
		p := fault.Standard(*impair)
		if err := p.Validate(); err != nil {
			log.Fatalf("impair: %v", err)
		}
		opt.Faults = &p
	}
	figs := []string{"7", "8", "9", "10", "11a", "11b", "12a", "12b", "13", "headline", "ablation", "excitation", "mimo", "robustness", "wild"}
	if *fig != "" {
		figs = []string{*fig}
	}

	// Instrumentation is opt-in: with neither flag the registry stays
	// nil and every probe in the pipeline is a no-op.
	var reg *obs.Registry
	if *metricsAddr != "" || *manifestOut != "" {
		reg = obs.NewRegistry()
		opt.Obs = reg
		parallel.SetRegistry(reg)
	}
	if *metricsAddr != "" {
		_, bound, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("metrics-addr: %v", err)
		}
		log.Printf("metrics: http://%s/metrics  pprof: http://%s/debug/pprof/", bound, bound)
	}
	var man *obs.Manifest
	if *manifestOut != "" {
		man = obs.NewManifest("backfi-bench", map[string]any{
			"figs":    figs,
			"trials":  *trials,
			"seed":    *seed,
			"workers": parallel.Normalize(*workers),
			"impair":  *impair,
		})
	}
	finishManifest := func() {
		if man == nil {
			return
		}
		man.Finish(reg)
		if err := man.WriteFile(*manifestOut); err != nil {
			log.Fatalf("manifest: %v", err)
		}
		log.Printf("wrote %s", *manifestOut)
	}

	bench := map[string]benchEntry{}
	if *jsonOut {
		report := map[string]any{}
		for _, f := range figs {
			start := time.Now()
			data, err := runData(f, opt)
			if err != nil {
				log.Fatalf("fig %s: %v", f, err)
			}
			report["fig"+f] = data
			recordBench(bench, man, f, data, time.Since(start))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			log.Fatal(err)
		}
		writeBench(*benchOut, bench)
		finishManifest()
		return
	}
	total := time.Duration(0)
	for _, f := range figs {
		start := time.Now()
		data, err := runData(f, opt)
		if err != nil {
			log.Fatalf("fig %s: %v", f, err)
		}
		elapsed := time.Since(start)
		total += elapsed
		recordBench(bench, man, f, data, elapsed)
		fmt.Printf("=== Figure %s (%.1fs) ===\n%s\n", f, elapsed.Seconds(), render(f, data))
	}
	fmt.Printf("total wall clock: %.1fs (workers=%d)\n", total.Seconds(), parallel.Normalize(opt.Workers))
	writeBench(*benchOut, bench)
	finishManifest()
}

// benchEntry is one figure's machine-readable summary.
type benchEntry struct {
	// Metric names the figure's headline number; Value is that number.
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	// WallSeconds is the figure's end-to-end generation time.
	WallSeconds float64 `json:"wall_seconds"`
}

// recordBench reduces one figure's typed rows to its headline metric,
// mirroring the entry into the run manifest's phase list when one is
// being kept.
func recordBench(bench map[string]benchEntry, man *obs.Manifest, fig string, data any, elapsed time.Duration) {
	metric, value := headlineMetric(fig, data)
	bench["fig"+fig] = benchEntry{Metric: metric, Value: value, WallSeconds: elapsed.Seconds()}
	if man != nil {
		man.AddPhase("fig"+fig, elapsed.Seconds(), metric, value)
	}
}

// headlineMetric extracts the single number a figure argues for — the
// same quantities bench_test.go reports via b.ReportMetric.
func headlineMetric(fig string, data any) (string, float64) {
	switch fig {
	case "8":
		for _, r := range data.([]experiments.Fig8Row) {
			if r.DistanceM == 1 {
				return "Mbps@1m(32µs)", r.Best32Bps / 1e6
			}
		}
	case "9":
		curves := data.([]experiments.Fig9Curve)
		if len(curves) > 0 {
			return "cutoff-Mbps@0.5m", curves[0].MaxThroughputBps() / 1e6
		}
	case "10":
		for _, r := range data.([]experiments.Fig10Row) {
			if r.TargetBps == 1.25e6 && r.DistanceM == 2 {
				return "REPB@1.25Mbps,2m", r.REPB
			}
		}
	case "11a":
		return "median-degradation-dB", data.(*experiments.Fig11aResult).MedianDegradationDB
	case "11b":
		var hi, lo float64
		for _, r := range data.([]experiments.Fig11bRow) {
			if r.Mod.String() != "BPSK" {
				continue
			}
			if r.SymbolRateHz == 2.5e6 {
				hi = r.MeanSNRdB
			}
			if r.SymbolRateHz == 100e3 {
				lo = r.MeanSNRdB
			}
		}
		return "MRC-gain-dB(BPSK)", lo - hi
	case "12a":
		return "median-%-of-optimal", data.(*experiments.Fig12aResult).FractionOfOptimal() * 100
	case "12b":
		rows := data.([]experiments.Fig12bRow)
		if len(rows) > 0 {
			return "drop-%@0.25m", rows[0].DropFraction * 100
		}
	case "13":
		for _, r := range data.([]experiments.Fig13Row) {
			if r.WiFiMbps == 54 {
				return "SNR-degradation-dB@54Mbps", r.Result.SNRDegradationDB()
			}
		}
	case "headline":
		return "speedup-x@1m", data.(*experiments.HeadlineResult).SpeedupAt1m()
	case "ablation":
		rows := data.([]experiments.AblationRow)
		if len(rows) >= 2 {
			return "analog-stage-SNR-dB", rows[0].MeanSNRdB - rows[1].MeanSNRdB
		}
	case "excitation":
		for _, r := range data.([]experiments.ExcitationRow) {
			if r.Excitation == "wifi" {
				return "wifi-success-rate", r.SuccessRate
			}
		}
	case "mimo":
		rows := data.([]experiments.MIMORow)
		var one, four float64
		for _, r := range rows {
			if r.DistanceM == 7 && r.Antennas == 1 {
				one = r.MeanJointSNRdB
			}
			if r.DistanceM == 7 && r.Antennas == 4 {
				four = r.MeanJointSNRdB
			}
		}
		return "4rx-gain-dB@7m", four - one
	case "robustness":
		// Success at full severity for the paper's QPSK operating point:
		// how much link survives the worst modeled front end.
		for _, r := range data.([]experiments.RobustnessRow) {
			if r.Severity == 1 && r.Mod.String() == "QPSK" {
				return "QPSK-success@sev1", r.SuccessRate
			}
		}
	case "wild":
		// Delivery at the harshest cell — brisk walking on a starved
		// harvest: how much of the stream survives the full "in the
		// wild" regime once dark episodes are ridden out.
		for _, r := range data.([]experiments.WildRow) {
			if r.MobilitySeverity == 1 && r.HarvestSeverity == 1 {
				return "delivery@wild-max", r.DeliveryRate
			}
		}
	}
	return "n/a", 0
}

// writeBench writes the per-figure summaries if a path was given.
func writeBench(path string, bench map[string]benchEntry) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("benchout: %v", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(bench); err != nil {
		log.Fatalf("benchout: %v", err)
	}
	log.Printf("wrote %s", path)
}

// runData returns the typed rows of one figure for JSON output.
func runData(fig string, opt experiments.Options) (any, error) {
	switch fig {
	case "7":
		return experiments.Fig7()
	case "8":
		return experiments.Fig8(opt)
	case "9":
		return experiments.Fig9(opt)
	case "10":
		return experiments.Fig10(opt)
	case "11a":
		return experiments.Fig11a(30, opt.Trials, opt)
	case "11b":
		return experiments.Fig11b(opt)
	case "12a":
		return experiments.Fig12a(20, opt)
	case "12b":
		return experiments.Fig12b(5, opt)
	case "13":
		return experiments.Fig13(opt)
	case "headline":
		return experiments.Headline(opt)
	case "ablation":
		return experiments.Ablations(opt)
	case "excitation":
		return experiments.ExcitationComparison(opt)
	case "mimo":
		return experiments.MIMOExtension(opt)
	case "robustness":
		return experiments.Robustness(opt)
	case "wild":
		return experiments.Wild(opt)
	}
	return nil, fmt.Errorf("unknown figure %q", fig)
}

// render formats one figure's typed rows in the paper's table layout.
func render(fig string, data any) string {
	switch fig {
	case "7":
		return experiments.RenderFig7(data.([]experiments.Fig7Row))
	case "8":
		return experiments.RenderFig8(data.([]experiments.Fig8Row))
	case "9":
		return experiments.RenderFig9(data.([]experiments.Fig9Curve))
	case "10":
		return experiments.RenderFig10(data.([]experiments.Fig10Row))
	case "11a":
		return experiments.RenderFig11a(data.(*experiments.Fig11aResult))
	case "11b":
		return experiments.RenderFig11b(data.([]experiments.Fig11bRow))
	case "12a":
		return experiments.RenderFig12a(data.(*experiments.Fig12aResult))
	case "12b":
		return experiments.RenderFig12b(data.([]experiments.Fig12bRow))
	case "13":
		return experiments.RenderFig13(data.([]experiments.Fig13Row))
	case "headline":
		return experiments.RenderHeadline(data.(*experiments.HeadlineResult))
	case "ablation":
		return experiments.RenderAblations(data.([]experiments.AblationRow))
	case "excitation":
		return experiments.RenderExcitation(data.([]experiments.ExcitationRow))
	case "mimo":
		return experiments.RenderMIMO(data.([]experiments.MIMORow))
	case "robustness":
		return experiments.RenderRobustness(data.([]experiments.RobustnessRow))
	case "wild":
		return experiments.RenderWild(data.([]experiments.WildRow))
	}
	return ""
}
