// Command backfi-loadgen drives a reader daemon with a closed-loop
// workload — one connection per session, each offering frames
// back-to-back — and reports offered vs. delivered throughput and tail
// latency. With -out it merges a "serving" entry into a benchmark
// results file (e.g. BENCH_results.json), preserving whatever other
// sections the file already holds.
//
// Example (self-contained, no external daemon):
//
//	backfi-loadgen -selfserve -sessions 8 -frames 100 -out BENCH_results.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"time"

	"backfi/internal/core"
	"backfi/internal/fault"
	"backfi/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("backfi-loadgen: ")

	addr := flag.String("addr", "", "daemon address to load (empty with -selfserve)")
	selfserve := flag.Bool("selfserve", false, "spawn an in-process daemon on an ephemeral loopback port instead of dialing -addr")
	sessions := flag.Int("sessions", 8, "concurrent sessions (one connection each)")
	frames := flag.Int("frames", 100, "frames offered per session")
	payload := flag.Int("bytes", 24, "payload bytes per frame")
	shards := flag.Int("shards", 4, "daemon shards (-selfserve only)")
	queue := flag.Int("queue", 64, "daemon per-shard queue bound (-selfserve only)")
	batch := flag.Int("batch", 16, "daemon batch bound (-selfserve only)")
	distance := flag.Float64("distance", 1, "link distance in meters (-selfserve only)")
	rho := flag.Float64("rho", 0.95, "session channel coherence (-selfserve only)")
	retries := flag.Int("retries", 2, "per-frame ARQ budget (-selfserve only)")
	seed := flag.Int64("seed", 1, "daemon base seed (-selfserve only)")
	impair := flag.Float64("impair", 0, "RF impairment severity in [0,1] (-selfserve only)")
	adapt := flag.Bool("adapt", false, "closed-loop rate adaptation on the self-served daemon (DESIGN.md §5f, -selfserve only)")
	minSymRate := flag.Float64("min-symrate", 0, "with -adapt, restrict the ladder to symbol rates ≥ this (-selfserve only)")
	timeline := flag.String("timeline", "", "scripted fault timeline frame:severity[,...] on the self-served daemon (overrides -impair; -selfserve only)")
	out := flag.String("out", "", "merge the run's summary under a \"serving\" key in this JSON file")
	flag.Parse()

	target := *addr
	if *selfserve {
		link := core.DefaultLinkConfig(*distance)
		link.Seed = *seed
		if *impair < 0 || *impair > 1 {
			log.Fatalf("impair: severity %v outside [0,1]", *impair)
		}
		if *impair > 0 {
			p := fault.Standard(*impair)
			if err := p.Validate(); err != nil {
				log.Fatalf("impair: %v", err)
			}
			link.Faults = &p
		}
		var tl *fault.Timeline
		if *timeline != "" {
			parsed, err := fault.ParseTimeline(*timeline)
			if err != nil {
				log.Fatalf("timeline: %v", err)
			}
			tl = parsed
		}
		srv, err := serve.NewServer(serve.Config{
			Addr:         "localhost:0",
			Link:         link,
			CoherenceRho: *rho,
			MaxRetries:   *retries,
			Shards:       *shards,
			QueueDepth:   *queue,
			BatchMax:     *batch,

			Adapt:                *adapt,
			AdaptMinSymbolRateHz: *minSymRate,
			Timeline:             tl,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			log.Fatal(err)
		}
		defer srv.Shutdown(context.Background())
		target = srv.Addr()
		log.Printf("self-serving on %s (shards=%d)", target, *shards)
	}
	if target == "" {
		log.Fatal("need -addr or -selfserve")
	}

	sum, err := run(target, *sessions, *frames, *payload)
	if err != nil {
		log.Fatal(err)
	}
	sum["sessions"] = *sessions
	sum["frames_per_session"] = *frames
	sum["payload_bytes"] = *payload
	if *selfserve {
		sum["shards"] = *shards
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		if err := mergeOut(*out, sum); err != nil {
			log.Fatalf("out: %v", err)
		}
		log.Printf("merged serving entry into %s", *out)
	}
}

// run offers sessions*frames jobs closed-loop and aggregates the
// outcome into the serving summary.
func run(addr string, sessions, frames, payloadBytes int) (map[string]any, error) {
	type sessionResult struct {
		delivered int
		rejected  int
		failed    int
		latencies []time.Duration
		err       error
	}
	results := make([]sessionResult, sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			r := &results[s]
			c, err := serve.Dial(addr)
			if err != nil {
				r.err = err
				return
			}
			defer c.Close()
			id := fmt.Sprintf("loadgen-%03d", s)
			for i := 0; i < frames; i++ {
				p := []byte(fmt.Sprintf("%s/%06d/", id, i))
				for len(p) < payloadBytes {
					p = append(p, byte(i))
				}
				t0 := time.Now()
				resp, err := c.Decode(id, p[:payloadBytes])
				r.latencies = append(r.latencies, time.Since(t0))
				switch {
				case err == nil && resp.Delivered:
					r.delivered++
				case errors.Is(err, serve.ErrQueueFull) || errors.Is(err, serve.ErrDraining) || errors.Is(err, serve.ErrDeadline):
					r.rejected++
				case err != nil:
					r.failed++
				}
			}
		}(s)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	var delivered, rejected, failed int
	var lat []time.Duration
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		delivered += r.delivered
		rejected += r.rejected
		failed += r.failed
		lat = append(lat, r.latencies...)
	}
	offered := sessions * frames
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return map[string]any{
		"offered_frames":   offered,
		"delivered_frames": delivered,
		"rejected_frames":  rejected,
		"failed_frames":    failed,
		"wall_seconds":     wall,
		"offered_fps":      float64(offered) / wall,
		"delivered_fps":    float64(delivered) / wall,
		"delivery_rate":    float64(delivered) / float64(offered),
		"goodput_bps":      float64(delivered*payloadBytes*8) / wall,
		"latency_p50_ms":   quantile(lat, 0.50),
		"latency_p95_ms":   quantile(lat, 0.95),
		"latency_p99_ms":   quantile(lat, 0.99),
	}, nil
}

// quantile returns the q-th latency quantile in milliseconds
// (nearest-rank on the sorted sample).
func quantile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i].Nanoseconds()) / 1e6
}

// mergeOut folds the summary into path under "serving", preserving
// every other top-level key (the file also carries "figures" and
// "micro" sections written by other tools).
func mergeOut(path string, sum map[string]any) error {
	doc := map[string]any{}
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &doc); err != nil {
			return fmt.Errorf("existing %s: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	doc["serving"] = sum
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
