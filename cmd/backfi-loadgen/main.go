// Command backfi-loadgen drives a reader daemon with a closed-loop
// workload — one connection per session, each offering frames
// back-to-back — and reports offered vs. delivered throughput and tail
// latency. Latency is accounted in microseconds internally (the binary
// protocol's sub-10ms tails are invisible at millisecond grain); the
// summary reports both `_us` and the legacy `_ms` keys. With -out it
// merges the summary under -out-key (default "serving") into a
// benchmark results file (e.g. BENCH_results.json), preserving
// whatever other sections the file already holds.
//
// Example (self-contained, no external daemon):
//
//	backfi-loadgen -selfserve -sessions 8 -frames 100 -out BENCH_results.json
//	backfi-loadgen -selfserve -proto binary -session-cache -fast \
//	    -out-key serving_binary -out BENCH_results.json
//
// Multi-tag churn mode (-churn, DESIGN.md §5i) walks a heavy-tailed
// session-id stream: most ids touch the daemon once and idle out, a
// Zipf tail keeps offering jointly decoded multi-tag slots. The
// summary then also records session-memory efficiency (sessions per
// GB of heap growth) and aggregate multi-tag goodput:
//
//	backfi-loadgen -selfserve -multitag 2 -churn 100000 -ttl 300ms \
//	    -max-session-bytes 4096 -out-key serving_multitag -out BENCH_results.json
//
// Cluster mode (DESIGN.md §5j) spreads the same closed-loop workload
// across N reader nodes behind consistent-hash session routing — each
// session goroutine drives its own cluster client, so aggregate
// goodput scales with nodes when CPUs are available (the summary
// records gomaxprocs so gates can scale their expectations):
//
//	backfi-loadgen -selfserve -cluster 3 -proto binary -session-cache \
//	    -out-key serving_cluster -out BENCH_results.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"backfi/internal/cluster"
	"backfi/internal/core"
	"backfi/internal/fault"
	"backfi/internal/fec"
	"backfi/internal/obs"
	"backfi/internal/serve"
	"backfi/internal/tag"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("backfi-loadgen: ")

	addr := flag.String("addr", "", "daemon address to load (empty with -selfserve)")
	addrs := flag.String("addrs", "", "comma-separated reader-node addresses: load them as a cluster behind consistent-hash session routing (nodes must run -handoff; overrides -addr)")
	selfserve := flag.Bool("selfserve", false, "spawn an in-process daemon on an ephemeral loopback port instead of dialing -addr")
	clusterNodes := flag.Int("cluster", 0, "with -selfserve, spawn this many handoff-enabled nodes and route sessions across them (DESIGN.md §5j; 0 = one plain node)")
	proto := flag.String("proto", "json", "wire protocol: json (legacy frames) or binary (zero-copy framing, DESIGN.md §5g)")
	sessions := flag.Int("sessions", 8, "concurrent sessions (one connection each)")
	frames := flag.Int("frames", 100, "frames offered per session")
	payload := flag.Int("bytes", 24, "payload bytes per frame")
	shards := flag.Int("shards", 4, "daemon shards (-selfserve only)")
	queue := flag.Int("queue", 64, "daemon per-shard queue bound (-selfserve only)")
	batch := flag.Int("batch", 16, "daemon batch bound (-selfserve only)")
	distance := flag.Float64("distance", 1, "link distance in meters (-selfserve only)")
	rho := flag.Float64("rho", 0.95, "session channel coherence (-selfserve only)")
	retries := flag.Int("retries", 2, "per-frame ARQ budget (-selfserve only)")
	seed := flag.Int64("seed", 1, "daemon base seed (-selfserve only)")
	impair := flag.Float64("impair", 0, "RF impairment severity in [0,1] (-selfserve only)")
	sessionCache := flag.Bool("session-cache", false, "enable the per-session link cache on the self-served daemon (DESIGN.md §5g; -selfserve only)")
	fastTag := flag.Bool("fast", false, "serve the fast tag configuration (16-PSK, rate 2/3, 2.5 Msym/s) instead of the default (-selfserve only)")
	adapt := flag.Bool("adapt", false, "closed-loop rate adaptation on the self-served daemon (DESIGN.md §5f, -selfserve only)")
	minSymRate := flag.Float64("min-symrate", 0, "with -adapt, restrict the ladder to symbol rates ≥ this (-selfserve only)")
	timeline := flag.String("timeline", "", "scripted fault timeline frame:severity[,...] on the self-served daemon (overrides -impair; -selfserve only)")
	harvest := flag.Float64("harvest", 0, "harvest scarcity severity in [0,1] on the self-served daemon: >0 enables the energy-aware poll scheduler (DESIGN.md §5k), so sessions mix live and dark tags by their seeded harvest traces; dark polls are retried within a budget and reported separately (-selfserve single-tag workload only)")
	mtTags := flag.Int("multitag", 0, "multi-tag group size: offer mdecode slots of this many payloads instead of single-tag frames (0 = off)")
	mtImpostor := flag.Bool("multitag-impostor", false, "add an unpolled impostor tag to every multi-tag session (-selfserve only)")
	churn := flag.Int("churn", 0, "churn mode: walk this many distinct session ids with a heavy-tailed slots-per-id profile (0 = legacy fixed-session workload)")
	churnActive := flag.Float64("churn-active", 0.02, "churn mode: fraction of ids that are active groups offering decode slots; the rest register once and idle out")
	ttl := flag.Duration("ttl", 0, "self-served daemon session TTL — idle sessions are evicted by per-shard sweeps (-selfserve only; 0 keeps sessions forever)")
	maxSessBytes := flag.Int64("max-session-bytes", 0, "churn mode gate: fail unless heap growth per churned session id stays at or below this many bytes (0 disables)")
	compare := flag.Bool("compare-protos", false, "run the workload once per protocol on fresh identical daemons (best of two runs each) and exit non-zero unless binary goodput ≥ JSON goodput (-selfserve only)")
	gateFile := flag.String("gate-baseline", "", "cluster goodput gate: JSON bench file holding the single-node baseline entry; the cluster run must reach -gate-ratio times its goodput_bps when this host has at least as many CPUs as nodes, and must at least match it otherwise")
	gateKey := flag.String("gate-baseline-key", "serving_single", "cluster goodput gate: top-level key of the baseline entry inside -gate-baseline")
	gateRatio := flag.Float64("gate-ratio", 2, "cluster goodput gate: required goodput multiple over the baseline when parallelism is available (gomaxprocs >= nodes); relaxes to 1.0 (no regression) on narrower hosts where node decode loops share cores")
	out := flag.String("out", "", "merge the run's summary into this JSON file")
	outKey := flag.String("out-key", "serving", "top-level key the summary merges under with -out")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON of the run's sampled frames to this file (open in chrome://tracing or Perfetto)")
	traceSample := flag.Int("trace-sample", 1, "with -trace-out, head-sample 1/N frames per session into the trace")
	flag.Parse()

	switch *proto {
	case "json", "binary":
	default:
		log.Fatalf("proto: unknown protocol %q (want json or binary)", *proto)
	}
	if *harvest < 0 || *harvest > 1 {
		log.Fatalf("harvest: severity %v outside [0,1]", *harvest)
	}
	if *harvest > 0 && (!*selfserve || *clusterNodes > 1 || *addrs != "" || *churn > 0 || *mtTags > 0 || *compare) {
		log.Fatal("harvest: the energy scheduler drives the plain -selfserve single-node decode workload only (no -cluster/-addrs/-churn/-multitag/-compare-protos)")
	}

	// One tracer shared by the clients and the self-served daemon: both
	// derive the same per-frame trace ids from (seed, session, index), so
	// the exported trace strings client send, serve stages, and decode
	// pipeline stages together under one id per frame.
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(obs.TracerConfig{Seed: *seed, SampleEvery: *traceSample})
	}

	newServer := func() *serve.Server {
		link := core.DefaultLinkConfig(*distance)
		link.Seed = *seed
		if *fastTag {
			link.Tag = tag.Config{Mod: tag.PSK16, Coding: fec.Rate23, SymbolRateHz: 2.5e6,
				PreambleChips: tag.DefaultPreambleChips, ID: link.Tag.ID}
		}
		if *impair < 0 || *impair > 1 {
			log.Fatalf("impair: severity %v outside [0,1]", *impair)
		}
		if *impair > 0 {
			p := fault.Standard(*impair)
			if err := p.Validate(); err != nil {
				log.Fatalf("impair: %v", err)
			}
			link.Faults = &p
		}
		var tl *fault.Timeline
		if *timeline != "" {
			parsed, err := fault.ParseTimeline(*timeline)
			if err != nil {
				log.Fatalf("timeline: %v", err)
			}
			tl = parsed
		}
		cfg := serve.Config{
			Addr:         "localhost:0",
			Link:         link,
			CoherenceRho: *rho,
			MaxRetries:   *retries,
			Shards:       *shards,
			QueueDepth:   *queue,
			BatchMax:     *batch,
			SessionCache: *sessionCache,
			SessionTTL:   *ttl,
			Handoff:      *clusterNodes > 1,

			MultiTagImpostor: *mtImpostor,

			Adapt:                *adapt,
			AdaptMinSymbolRateHz: *minSymRate,
			Timeline:             tl,

			Tracer: tracer,
		}
		if *harvest > 0 {
			cfg.Energy = true
			cfg.EnergySeverity = *harvest
			// Cold start: 60% banked, so a starved harvest actually
			// duty-cycles inside a ~100-frame workload.
			tank := serve.DefaultEnergyTank()
			tank.InitialJ = 0.6 * tank.CapacityJ
			cfg.EnergyTank = &tank
		}
		srv, err := serve.NewServer(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			log.Fatal(err)
		}
		return srv
	}

	if *compare {
		if !*selfserve {
			log.Fatal("compare-protos requires -selfserve (fresh identical daemons per run)")
		}
		compareProtos(newServer, *sessions, *frames, *payload)
		return
	}

	var clusterAddrs []string
	if *addrs != "" {
		clusterAddrs = strings.Split(*addrs, ",")
	}
	if *clusterNodes > 1 {
		if !*selfserve {
			log.Fatal("cluster: -cluster needs -selfserve (point -addrs at external handoff-enabled nodes instead)")
		}
		if len(clusterAddrs) > 0 {
			log.Fatal("cluster: -cluster and -addrs are mutually exclusive")
		}
	}

	target := *addr
	var selfsrv *serve.Server
	if *selfserve {
		if *clusterNodes > 1 {
			for i := 0; i < *clusterNodes; i++ {
				srv := newServer()
				defer srv.Shutdown(context.Background())
				clusterAddrs = append(clusterAddrs, srv.Addr())
			}
			log.Printf("self-serving a %d-node handoff cluster %v (shards=%d each, proto=%s)",
				*clusterNodes, clusterAddrs, *shards, *proto)
		} else {
			selfsrv = newServer()
			defer selfsrv.Shutdown(context.Background())
			target = selfsrv.Addr()
			log.Printf("self-serving on %s (shards=%d proto=%s)", target, *shards, *proto)
		}
	}
	if target == "" && len(clusterAddrs) == 0 {
		log.Fatal("need -addr, -addrs, or -selfserve")
	}
	if len(clusterAddrs) > 0 && (*churn > 0 || *mtTags > 0) {
		log.Fatal("cluster mode drives the single-tag decode workload only (no -churn / -multitag)")
	}

	var sum map[string]any
	var dark []sessionDark
	var err error
	if *churn > 0 {
		var srv *serve.Server
		if *selfserve {
			srv = selfsrv
		}
		sum, err = runChurn(target, *proto, *sessions, *churn, *mtTags, *frames, *payload, *seed, *churnActive, srv)
		if err == nil && *maxSessBytes > 0 {
			if bps := sum["bytes_per_session"].(float64); bps > float64(*maxSessBytes) {
				log.Fatalf("session-memory gate FAILED: %.0f heap bytes per churned session > %d budget", bps, *maxSessBytes)
			}
			log.Printf("session-memory gate OK: %.0f heap bytes per churned session <= %d budget",
				sum["bytes_per_session"].(float64), *maxSessBytes)
		}
	} else if len(clusterAddrs) > 0 {
		sum, _, err = run(func() (frameDecoder, error) {
			return cluster.New(cluster.Config{
				Addrs:     clusterAddrs,
				Client:    serve.ClientConfig{Proto: *proto, Tracer: tracer},
				TraceSeed: *seed,
			})
		}, *sessions, *frames, *payload, 0)
	} else {
		darkRetries := 0
		if *harvest > 0 {
			darkRetries = 64
		}
		sum, dark, err = run(func() (frameDecoder, error) {
			return serve.DialClient(serve.ClientConfig{Addr: target, Proto: *proto, Tracer: tracer})
		}, *sessions, *frames, *payload, darkRetries)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *harvest > 0 && *ttl > 0 && selfsrv != nil {
		if err := harvestGate(target, *proto, *ttl, dark, selfsrv); err != nil {
			log.Fatal(err)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("trace-out: %v", err)
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			log.Fatalf("trace-out: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("trace-out: %v", err)
		}
		traces, spans, dropped := tracer.Stats()
		log.Printf("wrote %s (%d traces, %d spans, %d dropped)", *traceOut, traces, spans, dropped)
	}
	sum["sessions"] = *sessions
	sum["frames_per_session"] = *frames
	sum["payload_bytes"] = *payload
	sum["proto"] = *proto
	if len(clusterAddrs) > 0 {
		sum["cluster_nodes"] = len(clusterAddrs)
	}
	if *churn > 0 {
		sum["multitag_group"] = *mtTags
		sum["multitag_impostor"] = *mtImpostor
		sum["churn_active_fraction"] = *churnActive
		sum["session_ttl_ms"] = ttl.Milliseconds()
	}
	if *selfserve {
		sum["shards"] = *shards
		sum["session_cache"] = *sessionCache
		if *fastTag {
			sum["fast_tag"] = true
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		log.Fatal(err)
	}
	if *gateFile != "" {
		if len(clusterAddrs) == 0 {
			log.Fatal("gate-baseline: only meaningful for a cluster run (-cluster or -addrs)")
		}
		if err := gateGoodput(*gateFile, *gateKey, *gateRatio, len(clusterAddrs),
			sum["goodput_bps"].(float64)); err != nil {
			log.Fatal(err)
		}
	}
	if *out != "" {
		if err := mergeOut(*out, *outKey, sum); err != nil {
			log.Fatalf("out: %v", err)
		}
		log.Printf("merged %s entry into %s", *outKey, *out)
	}
}

// compareProtos is the CI protocol gate: the same workload against
// fresh, identically-configured daemons — so both protocols decode the
// exact same session streams — once per protocol, best goodput of two
// runs each (absorbing scheduler noise), asserting the binary framing
// never serves slower than JSON.
func compareProtos(newServer func() *serve.Server, sessions, frames, payload int) {
	best := map[string]float64{}
	for _, proto := range []string{"json", "binary"} {
		for attempt := 0; attempt < 2; attempt++ {
			srv := newServer()
			proto := proto
			sum, _, err := run(func() (frameDecoder, error) {
				return serve.DialClient(serve.ClientConfig{Addr: srv.Addr(), Proto: proto})
			}, sessions, frames, payload, 0)
			srv.Shutdown(context.Background())
			if err != nil {
				log.Fatal(err)
			}
			if g := sum["goodput_bps"].(float64); g > best[proto] {
				best[proto] = g
			}
		}
		log.Printf("%s: best goodput %.0f bps", proto, best[proto])
	}
	if best["binary"] < best["json"] {
		log.Fatalf("protocol gate FAILED: binary goodput %.0f bps < json %.0f bps", best["binary"], best["json"])
	}
	log.Printf("protocol gate OK: binary %.0f bps >= json %.0f bps", best["binary"], best["json"])
}

// frameDecoder is the client surface run measures: a single-node
// serve.Client and a consistent-hash cluster.Client both satisfy it,
// so single-node and cluster entries in the bench file are produced by
// the identical measurement loop.
type frameDecoder interface {
	Decode(session string, payload []byte) (*serve.Response, error)
	Close() error
}

// sessionDark is one session's energy-scheduler outcome: how many
// polls the daemon answered tag_dark, the consecutive dark streak the
// session ended on (exact — only this client polls the session), and
// how many polls reached a live decode. The harvest TTL gate uses it
// to find sessions that finished mid-backoff.
type sessionDark struct {
	id                               string
	darkPolls, endStreak, liveFrames int
}

// run offers sessions*frames jobs closed-loop — each session goroutine
// owns one client from dial — and aggregates the outcome into the
// serving summary. Latencies are recorded in microseconds (dark polls
// are retried up to darkRetries per frame and counted separately, not
// folded into the latency sample). gomaxprocs rides along because
// serving is CPU-bound: gates comparing entries (e.g. cluster vs.
// single-node goodput) must scale expectations by the parallelism the
// run actually had.
func run(dial func() (frameDecoder, error), sessions, frames, payloadBytes, darkRetries int) (map[string]any, []sessionDark, error) {
	type sessionResult struct {
		delivered  int
		rejected   int
		failed     int
		darkPolls  int
		endStreak  int
		liveFrames int
		latencyUS  []int64
		err        error
	}
	results := make([]sessionResult, sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			r := &results[s]
			c, err := dial()
			if err != nil {
				r.err = err
				return
			}
			defer c.Close()
			id := fmt.Sprintf("loadgen-%03d", s)
			for i := 0; i < frames; i++ {
				p := []byte(fmt.Sprintf("%s/%06d/", id, i))
				for len(p) < payloadBytes {
					p = append(p, byte(i))
				}
				var resp *serve.Response
				var err error
				for attempt := 0; ; attempt++ {
					t0 := time.Now()
					resp, err = c.Decode(id, p[:payloadBytes])
					lat := time.Since(t0).Microseconds()
					if errors.Is(err, serve.ErrTagDark) {
						r.darkPolls++
						r.endStreak++
						if attempt < darkRetries {
							continue
						}
					} else {
						r.endStreak = 0
						r.latencyUS = append(r.latencyUS, lat)
					}
					break
				}
				if err == nil {
					r.liveFrames++
				}
				switch {
				case err == nil && resp.Delivered:
					r.delivered++
				case errors.Is(err, serve.ErrQueueFull) || errors.Is(err, serve.ErrDraining) || errors.Is(err, serve.ErrDeadline):
					r.rejected++
				case err != nil:
					r.failed++
				}
			}
			if darkRetries > 0 {
				// Park the session mid-backoff for the harvest TTL gate:
				// the per-frame retry loop above always ends on a live
				// poll, so keep polling (no retries, outside the offered/
				// delivered accounting) until the tank next runs dry —
				// the run then ends with real dark-but-tracked sessions
				// for the eviction guard to protect. Bounded: a tank that
				// never goes dark at this severity just burns the cap.
				for extra := 0; extra < 40; extra++ {
					p := []byte(fmt.Sprintf("%s/%06d/", id, frames+extra))
					for len(p) < payloadBytes {
						p = append(p, byte(extra))
					}
					_, err := c.Decode(id, p[:payloadBytes])
					if errors.Is(err, serve.ErrTagDark) {
						r.darkPolls++
						r.endStreak++
						break
					}
					if err != nil {
						break
					}
					r.liveFrames++
				}
			}
		}(s)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	var delivered, rejected, failed, darkPolls, darkSessions int
	var lat []int64
	dark := make([]sessionDark, sessions)
	for s, r := range results {
		if r.err != nil {
			return nil, nil, r.err
		}
		delivered += r.delivered
		rejected += r.rejected
		failed += r.failed
		darkPolls += r.darkPolls
		if r.darkPolls > 0 {
			darkSessions++
		}
		dark[s] = sessionDark{
			id:        fmt.Sprintf("loadgen-%03d", s),
			darkPolls: r.darkPolls, endStreak: r.endStreak, liveFrames: r.liveFrames,
		}
		lat = append(lat, r.latencyUS...)
	}
	offered := sessions * frames
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p50, p95, p99 := quantileUS(lat, 0.50), quantileUS(lat, 0.95), quantileUS(lat, 0.99)
	sum := map[string]any{
		"offered_frames":   offered,
		"delivered_frames": delivered,
		"rejected_frames":  rejected,
		"failed_frames":    failed,
		"wall_seconds":     wall,
		"offered_fps":      float64(offered) / wall,
		"delivered_fps":    float64(delivered) / wall,
		"delivery_rate":    float64(delivered) / float64(offered),
		"goodput_bps":      float64(delivered*payloadBytes*8) / wall,
		"gomaxprocs":       runtime.GOMAXPROCS(0),
		"latency_p50_us":   p50,
		"latency_p95_us":   p95,
		"latency_p99_us":   p99,
		// Millisecond keys kept for continuity with earlier entries.
		"latency_p50_ms": p50 / 1e3,
		"latency_p95_ms": p95 / 1e3,
		"latency_p99_ms": p99 / 1e3,
	}
	if darkRetries > 0 {
		sum["dark_polls"] = darkPolls
		sum["dark_sessions"] = darkSessions
	}
	return sum, dark, nil
}

// runChurn is the §5i memory-and-goodput profile: churnN distinct
// session ids stream through the daemon on `workers` connections. How
// much work each id brings follows a heavy-tailed (Zipf) draw seeded
// by (seed, id) — the realistic shape for a reader fleet, where most
// tags report rarely and a few groups poll continuously. An id with no
// tail work touches the daemon once (a stats probe realizes and then
// abandons its session); an id in the tail offers jointly decoded
// multi-tag slots of `tags` payloads (plain decodes when tags == 0).
// Besides throughput, the summary records the memory story the session
// TTL is for: heap growth per churned id and sessions per GB.
func runChurn(addr, proto string, workers, churnN, tags, slotsMax, payloadBytes int, seed int64, activeF float64, srv *serve.Server) (map[string]any, error) {
	if workers < 1 {
		workers = 1
	}
	if slotsMax < 1 {
		slotsMax = 1
	}
	runtime.GC()
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)

	type workerResult struct {
		probes    int
		slots     int
		offered   int // tag-frames offered in slots
		delivered int // tag-frames delivered
		rejected  int
		failed    int
		latencyUS []int64
		err       error
	}
	results := make([]workerResult, workers)
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &results[w]
			c, err := serve.DialClient(serve.ClientConfig{Addr: addr, Proto: proto})
			if err != nil {
				r.err = err
				return
			}
			defer c.Close()
			for {
				idx := next.Add(1) - 1
				if idx >= int64(churnN) {
					return
				}
				id := fmt.Sprintf("churn-%07d", idx)
				// Heavy-tailed work per id, a pure function of (seed, id):
				// an activeF-fraction of ids form active groups whose slot
				// count is Zipf-distributed up to slotsMax; everyone else
				// registers once and idles out.
				rng := rand.New(rand.NewSource(seed + 0x9e3779b9*idx))
				slots := 0
				if rng.Float64() < activeF {
					slots = 1
					if slotsMax > 1 {
						slots += int(rand.NewZipf(rng, 1.5, 1, uint64(slotsMax-1)).Uint64())
					}
				}
				if slots == 0 {
					// The common case: the id registers (its session is
					// realized server-side) and never returns — the state the
					// TTL sweep exists to reclaim.
					r.probes++
					if _, err := c.Stats(id); err != nil {
						r.failed++
					}
					continue
				}
				for i := 0; i < slots; i++ {
					var delivered, frames int
					var err error
					t0 := time.Now()
					if tags > 0 {
						pay := make([][]byte, tags)
						for k := range pay {
							p := []byte(fmt.Sprintf("%s/%04d/%d/", id, i, k))
							for len(p) < payloadBytes {
								p = append(p, byte(i))
							}
							pay[k] = p[:payloadBytes]
						}
						var resp *serve.Response
						resp, err = c.MultiDecode(id, pay)
						frames = tags
						if err == nil {
							for _, tr := range resp.Tags {
								if tr.Delivered {
									delivered++
								}
							}
						}
					} else {
						p := []byte(fmt.Sprintf("%s/%04d/", id, i))
						for len(p) < payloadBytes {
							p = append(p, byte(i))
						}
						var resp *serve.Response
						resp, err = c.Decode(id, p[:payloadBytes])
						frames = 1
						if err == nil && resp.Delivered {
							delivered = 1
						}
					}
					r.latencyUS = append(r.latencyUS, time.Since(t0).Microseconds())
					r.slots++
					r.offered += frames
					r.delivered += delivered
					switch {
					case err == nil:
					case errors.Is(err, serve.ErrQueueFull) || errors.Is(err, serve.ErrDraining) || errors.Is(err, serve.ErrDeadline):
						r.rejected++
					default:
						r.failed++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	var probes, slots, offered, delivered, rejected, failed int
	var lat []int64
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		probes += r.probes
		slots += r.slots
		offered += r.offered
		delivered += r.delivered
		rejected += r.rejected
		failed += r.failed
		lat = append(lat, r.latencyUS...)
	}

	runtime.GC()
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	heapGrowth := float64(0)
	if msAfter.HeapAlloc > msBefore.HeapAlloc {
		heapGrowth = float64(msAfter.HeapAlloc - msBefore.HeapAlloc)
	}
	bytesPerSession := heapGrowth / float64(churnN)
	sessionsPerGB := 0.0
	if heapGrowth > 0 {
		sessionsPerGB = float64(churnN) / heapGrowth * (1 << 30)
	}

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	sum := map[string]any{
		"churn_sessions":       churnN,
		"stats_probes":         probes,
		"slots_offered":        slots,
		"tag_frames_offered":   offered,
		"tag_frames_delivered": delivered,
		"rejected_ops":         rejected,
		"failed_ops":           failed,
		"wall_seconds":         wall,
		"delivery_rate":        rate(delivered, offered),
		"goodput_bps":          float64(delivered*payloadBytes*8) / wall,
		"heap_growth_bytes":    heapGrowth,
		"bytes_per_session":    bytesPerSession,
		"sessions_per_gb":      sessionsPerGB,
		"latency_p50_us":       quantileUS(lat, 0.50),
		"latency_p95_us":       quantileUS(lat, 0.95),
		"latency_p99_us":       quantileUS(lat, 0.99),
	}
	if srv != nil {
		sum["live_sessions_end"] = srv.Sessions()
		sum["evictions"] = srv.Evictions()
	}
	return sum, nil
}

// harvestGate asserts the §5k eviction guard end to end: a session
// that finished the workload mid-dark-backoff (its ending dark streak
// below the backoff ceiling) must survive the TTL sweeps that run
// while everything sits idle — the daemon tracks its tank and backoff
// cursor; wiping them would turn the next wake into a fresh session
// and lose the stream. The sweep ticker fires every TTL/2 regardless
// of traffic, so sleeping two TTLs guarantees a sweep saw the idle
// sessions before the stats probes ask whether they survived (a
// wrongly evicted session comes back with zeroed stats).
func harvestGate(addr, proto string, ttl time.Duration, dark []sessionDark, srv *serve.Server) error {
	bp := serve.DefaultEnergyBackoff()
	ceiling := 1
	for bp.Delay(ceiling) < bp.MaxSec {
		ceiling++
	}
	var cand []sessionDark
	for _, d := range dark {
		if d.endStreak > 0 && d.endStreak < ceiling && d.liveFrames > 0 {
			cand = append(cand, d)
		}
	}
	if len(cand) == 0 {
		log.Printf("harvest TTL gate: no session ended mid-backoff (dark streak in (0,%d)) — nothing to assert this run", ceiling)
		return nil
	}
	time.Sleep(2*ttl + 100*time.Millisecond)
	c, err := serve.DialClient(serve.ClientConfig{Addr: addr, Proto: proto})
	if err != nil {
		return err
	}
	defer c.Close()
	for _, d := range cand {
		st, err := c.Stats(d.id)
		if err != nil {
			return fmt.Errorf("harvest TTL gate: stats %s: %w", d.id, err)
		}
		if st.FramesOffered == 0 {
			return fmt.Errorf("harvest TTL gate FAILED: dark session %s (streak %d < ceiling %d after %d live frames) was evicted mid-backoff — its stats came back empty", d.id, d.endStreak, ceiling, d.liveFrames)
		}
	}
	log.Printf("harvest TTL gate OK: %d dark-mid-backoff sessions survived the idle sweeps (evictions=%d)", len(cand), srv.Evictions())
	return nil
}

// gateGoodput enforces the cluster scaling contract against a
// single-node baseline entry measured with the identical workload: with
// at least one CPU per node the cluster must multiply goodput by
// ratio; on narrower hosts the node decode loops time-share cores, so
// the honest requirement is only that routing and handoff overhead
// never cost throughput (>= 1x). The achieved parallelism (gomaxprocs)
// is recorded in the cluster entry so readers can interpret the figure.
func gateGoodput(path, key string, ratio float64, nodes int, got float64) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("gate-baseline: %w", err)
	}
	var doc map[string]map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		return fmt.Errorf("gate-baseline %s: %w", path, err)
	}
	entry, ok := doc[key]
	if !ok {
		return fmt.Errorf("gate-baseline %s: no %q entry", path, key)
	}
	base, ok := entry["goodput_bps"].(float64)
	if !ok || base <= 0 {
		return fmt.Errorf("gate-baseline %s: %q has no positive goodput_bps", path, key)
	}
	need := ratio
	if procs := runtime.GOMAXPROCS(0); procs < nodes {
		log.Printf("cluster goodput gate: %d CPUs for %d nodes — relaxing %gx to 1x (no regression)",
			procs, nodes, ratio)
		need = 1
	}
	if got < base*need {
		return fmt.Errorf("cluster goodput gate FAILED: %.0f bps < %.2fx single-node baseline %.0f bps",
			got, need, base)
	}
	log.Printf("cluster goodput gate OK: %.0f bps >= %.2fx single-node baseline %.0f bps (%.2fx achieved)",
		got, need, base, got/base)
	return nil
}

// rate is a zero-guarded ratio.
func rate(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// quantileUS returns the q-th latency quantile in microseconds
// (nearest-rank on the sorted sample).
func quantileUS(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return float64(sorted[int(q*float64(len(sorted)-1))])
}

// mergeOut folds the summary into path under key, preserving every
// other top-level key (the file also carries "figures" and "micro"
// sections written by other tools, and may hold several serving
// entries — e.g. "serving" for the legacy JSON baseline and
// "serving_binary" for the binary-protocol run).
func mergeOut(path, key string, sum map[string]any) error {
	doc := map[string]any{}
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &doc); err != nil {
			return fmt.Errorf("existing %s: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	doc[key] = sum
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
