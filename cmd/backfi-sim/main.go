// Command backfi-sim runs one end-to-end BackFi packet exchange and
// prints the link diagnostics: cancellation depth, channel estimate
// quality, post-MRC SNR, raw BER, and the decoded payload check.
//
// Example:
//
//	backfi-sim -distance 2 -mod qpsk -coding 1/2 -symrate 1e6 -bytes 200
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"backfi"
	"backfi/internal/ble"
	"backfi/internal/core"
	"backfi/internal/dsp"
	"backfi/internal/dsss"
	"backfi/internal/obs"
	"backfi/internal/tag"
	"backfi/internal/zigbee"
)

// runWith performs one exchange over the chosen excitation family.
func runWith(link *core.Link, excitation string, payload []byte, seed int64) (*core.PacketResult, error) {
	if excitation == "wifi" {
		return link.RunPacket(payload)
	}
	tcfg := link.Tag.Cfg
	need := tag.SilentSamples + tcfg.PreambleSamples() +
		tag.SymbolsForPayload(len(payload), tcfg.Coding, tcfg.Mod)*tcfg.SamplesPerSymbol() + 2000
	r := rand.New(rand.NewSource(seed + 424242))
	var exc []complex128
	for len(exc) < need {
		switch excitation {
		case "zigbee":
			psdu := make([]byte, 100)
			r.Read(psdu)
			w, err := zigbee.Transmit(psdu)
			if err != nil {
				return nil, err
			}
			exc = append(exc, w...)
		case "ble":
			pdu := make([]byte, 200)
			r.Read(pdu)
			w, err := ble.Transmit(pdu)
			if err != nil {
				return nil, err
			}
			exc = append(exc, w...)
		case "11b":
			psdu := make([]byte, 500)
			r.Read(psdu)
			w, err := dsss.Transmit(psdu, dsss.DQPSK2M)
			if err != nil {
				return nil, err
			}
			exc = append(exc, w...)
		case "white":
			chunk := make([]complex128, need)
			for i := range chunk {
				chunk[i] = complex(r.NormFloat64(), r.NormFloat64())
			}
			exc = append(exc, dsp.NormalizePower(chunk, 1)...)
		default:
			return nil, fmt.Errorf("unknown excitation %q", excitation)
		}
	}
	return link.RunCustomExcitation(exc, payload)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("backfi-sim: ")

	distance := flag.Float64("distance", 1, "AP–tag distance in meters")
	mod := flag.String("mod", "qpsk", "tag modulation: bpsk | qpsk | 16psk")
	coding := flag.String("coding", "1/2", "convolutional code rate: 1/2 | 2/3")
	symrate := flag.Float64("symrate", 1e6, "tag symbol rate in Hz (must divide 20 MHz)")
	preamble := flag.Int("preamble", backfi.DefaultPreambleChips, "tag preamble length in 1 µs chips (32 or 96)")
	bytes := flag.Int("bytes", 100, "payload size in bytes")
	packets := flag.Int("packets", 1, "number of packet exchanges")
	seed := flag.Int64("seed", 1, "random seed")
	excitation := flag.String("excitation", "wifi", "excitation signal: wifi | 11b | zigbee | ble | white")
	antennas := flag.Int("antennas", 1, "AP receive antennas (MIMO extension, wifi excitation only)")
	impair := flag.Float64("impair", 0, "RF impairment severity in [0,1]: 0 = ideal front end, >0 applies the standard fault profile (DESIGN.md §5d)")
	cfoHz := flag.Float64("cfo", 0, "carrier frequency offset in Hz on the excitation air path (overrides -impair's CFO)")
	interfDuty := flag.Float64("interf-duty", 0, "co-channel interference duty cycle in [0,1) (overrides -impair's interference)")
	interfDBm := flag.Float64("interf-power", -70, "co-channel interference burst power in dBm (with -interf-duty)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus text on ADDR/metrics and pprof on ADDR/debug/pprof/ while running (e.g. localhost:9090)")
	manifestOut := flag.String("manifest", "", "write a per-run manifest (config, seed, build info, metric snapshot) to this JSON file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON of every packet's decode pipeline stages to this file (open in chrome://tracing or Perfetto)")
	flag.Parse()

	tcfg := backfi.TagConfig{
		SymbolRateHz:  *symrate,
		PreambleChips: *preamble,
		ID:            1,
	}
	switch strings.ToLower(*mod) {
	case "bpsk":
		tcfg.Mod = backfi.BPSK
	case "qpsk":
		tcfg.Mod = backfi.QPSK
	case "16psk", "psk16":
		tcfg.Mod = backfi.PSK16
	default:
		log.Fatalf("unknown modulation %q", *mod)
	}
	switch *coding {
	case "1/2":
		tcfg.Coding = backfi.Rate12
	case "2/3":
		tcfg.Coding = backfi.Rate23
	default:
		log.Fatalf("unknown coding rate %q", *coding)
	}

	cfg := backfi.DefaultLinkConfig(*distance)
	cfg.Tag = tcfg
	cfg.Seed = *seed

	var faults backfi.FaultProfile
	if *impair > 0 {
		faults = backfi.StandardFaultProfile(*impair)
	}
	if *cfoHz != 0 {
		faults.CFOHz = *cfoHz
	}
	if *interfDuty > 0 {
		faults.InterfDuty = *interfDuty
		faults.InterfPowerDBm = *interfDBm
	}
	if err := faults.Validate(); err != nil {
		log.Fatalf("fault profile: %v", err)
	}
	if faults.Enabled() {
		cfg.Faults = &faults
	}

	var reg *obs.Registry
	if *metricsAddr != "" || *manifestOut != "" {
		reg = obs.NewRegistry()
		cfg.Obs = reg
	}
	if *metricsAddr != "" {
		_, bound, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("metrics-addr: %v", err)
		}
		log.Printf("metrics: http://%s/metrics  pprof: http://%s/debug/pprof/", bound, bound)
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(obs.TracerConfig{Seed: *seed, SampleEvery: 1})
	}
	var man *obs.Manifest
	if *manifestOut != "" {
		man = obs.NewManifest("backfi-sim", map[string]any{
			"distance": *distance,
			"mod":      *mod,
			"coding":   *coding,
			"symrate":  *symrate,
			"bytes":    *bytes,
			"packets":  *packets,
			"seed":     *seed,
			"impair":   *impair,
		})
	}

	if *antennas > 1 && *excitation != "wifi" {
		log.Fatal("-antennas requires the wifi excitation")
	}
	ok := 0
	for p := 0; p < *packets; p++ {
		cfg.Seed = *seed + int64(p)
		if *antennas > 1 {
			mlink, err := backfi.NewMIMOLink(cfg, *antennas)
			if err != nil {
				log.Fatal(err)
			}
			mres, err := mlink.RunPacket(mlink.RandomPayload(*bytes))
			if err != nil {
				log.Fatal(err)
			}
			if mres.PayloadOK {
				ok++
			}
			fmt.Printf("packet %d (%d antennas): decoded=%v joint SNR=%.1f dB per-antenna=%v\n",
				p, *antennas, mres.PayloadOK, mres.JointSNRdB, mres.PerAntennaSNRdB)
			continue
		}
		link, err := backfi.NewLink(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if tracer != nil {
			link.SetTrace(tracer.Head("sim", p))
		}
		res, err := runWith(link, *excitation, link.RandomPayload(*bytes), cfg.Seed)
		if err != nil {
			log.Fatal(err)
		}
		if res.PayloadOK {
			ok++
		}
		fmt.Printf("packet %d: decoded=%v\n", p, res.PayloadOK)
		fmt.Printf("  tag config          %v  (%.2f Mbps)\n", tcfg, tcfg.BitRate()/1e6)
		fmt.Printf("  excitation          %d samples (%.2f ms)\n", res.ExcitationSamples, float64(res.ExcitationSamples)/20e3)
		fmt.Printf("  self-interference   %.1f dBm → %.1f dBm (%.1f dB cancelled)\n",
			res.SICBeforeDBm, res.SICResidualDBm, res.SICCancellationDB)
		fmt.Printf("  expected SNR        %.1f dB per sample, %.1f dB post-MRC\n",
			res.ExpectedSNRdB, res.ExpectedMRCSNRdB)
		fmt.Printf("  measured SNR        %.1f dB post-MRC\n", res.MeasuredSNRdB)
		fmt.Printf("  preamble corr       %.3f (sync offset %+d samples)\n", res.PreambleCorr, res.SyncOffsetSamples)
		fmt.Printf("  raw coded BER       %.2e (%d/%d), Viterbi corrected %d bits\n",
			res.RawBER(), res.RawBitErrors, res.RawBits, res.ViterbiCorrectedBits)
	}
	fmt.Printf("\n%d/%d packets decoded\n", ok, *packets)
	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("trace-out: %v", err)
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			log.Fatalf("trace-out: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("trace-out: %v", err)
		}
		traces, spans, _ := tracer.Stats()
		log.Printf("wrote %s (%d traces, %d spans)", *traceOut, traces, spans)
	}
	if man != nil {
		man.Finish(reg)
		if err := man.WriteFile(*manifestOut); err != nil {
			log.Fatalf("manifest: %v", err)
		}
		log.Printf("wrote %s", *manifestOut)
	}
	if ok == 0 {
		os.Exit(1)
	}
}
