// Command wifigen exercises the 802.11a/g OFDM PHY on its own:
// it encodes a PSDU into baseband IQ, optionally impairs it with
// multipath/noise/CFO, decodes it back, and reports the receiver
// diagnostics. Useful for inspecting the excitation signal BackFi
// rides on.
//
// Example:
//
//	wifigen -mbps 54 -bytes 1500 -snr 25 -cfo 40e3
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"

	"backfi/internal/channel"
	"backfi/internal/dsp"
	"backfi/internal/iq"
	"backfi/internal/wifi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wifigen: ")

	mbps := flag.Int("mbps", 24, "802.11a/g rate: 6 9 12 18 24 36 48 54")
	nbytes := flag.Int("bytes", 1000, "PSDU size in bytes")
	snr := flag.Float64("snr", math.Inf(1), "AWGN SNR in dB (default: no noise)")
	cfoHz := flag.Float64("cfo", 0, "carrier frequency offset in Hz")
	taps := flag.Int("taps", 0, "multipath taps (0 = ideal channel)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "write the (impaired) waveform to this IQ file")
	format := flag.String("format", "cf32", "IQ file format: cf32 | cs16")
	flag.Parse()

	rate, err := wifi.RateByMbps(*mbps)
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(*seed))
	psdu := make([]byte, *nbytes)
	r.Read(psdu)

	wave, err := wifi.Transmit(psdu, rate, wifi.DefaultScramblerSeed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rate        %v\n", rate)
	fmt.Printf("PSDU        %d bytes\n", len(psdu))
	fmt.Printf("waveform    %d samples (%.1f µs, %d data symbols)\n",
		len(wave), float64(len(wave))/20, (len(wave)-wifi.PreambleLen-wifi.SymbolLen)/wifi.SymbolLen)
	fmt.Printf("airtime     %.1f µs\n", wifi.AirtimeSeconds(len(psdu), rate)*1e6)
	fmt.Printf("PAPR        %.1f dB\n", dsp.PAPRdB(wave))
	if len(wave) >= 256 {
		psd := dsp.WelchPSD(wave, 64)
		fmt.Printf("occupancy   %.0f%% of the band holds 99%% of the power\n",
			dsp.OccupiedBandwidth(psd, 0.99)*100)
	}

	// Pad with silence so synchronization is non-trivial and channel
	// tails fit.
	wave = dsp.Concat(dsp.Zeros(100), wave, dsp.Zeros(100))

	// Impairments.
	if *taps > 0 {
		h := channel.RayleighTaps(r, *taps, 0.5)
		wave = h.Apply(wave)
		fmt.Printf("channel     %d Rayleigh taps\n", *taps)
	}
	if *cfoHz != 0 {
		wave = dsp.Rotate(wave, 0, 2*math.Pi**cfoHz/wifi.SampleRate)
		fmt.Printf("CFO         %.1f kHz\n", *cfoHz/1e3)
	}
	if !math.IsInf(*snr, 1) {
		p := dsp.Power(wave)
		noise := channel.NewAWGN(r, p*dsp.UnDB(-*snr))
		wave = noise.Add(wave)
		fmt.Printf("AWGN        %.1f dB SNR\n", *snr)
	}

	if *out != "" {
		f, err := iq.ParseFormat(*format)
		if err != nil {
			log.Fatal(err)
		}
		fh, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := iq.Write(fh, wave, f, dsp.MaxAbs(wave)); err != nil {
			fh.Close()
			log.Fatal(err)
		}
		if err := fh.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote       %s (%s, %d samples)\n", *out, f, len(wave))
	}

	got, info, err := wifi.NewReceiver().Receive(wave)
	if err != nil {
		log.Fatalf("decode failed: %v", err)
	}
	match := len(got) == len(psdu)
	for i := range got {
		if got[i] != psdu[i] {
			match = false
			break
		}
	}
	fmt.Printf("decoded     rate=%v len=%d match=%v\n", info.Rate, len(got), match)
	fmt.Printf("diagnostics EVM=%.4f (%.1f dB SNR), CFO=%.1f kHz\n",
		info.EVM, info.SNRdB, info.CFO*wifi.SampleRate/(2*math.Pi)/1e3)
	if !match {
		os.Exit(1)
	}
}
