package main

// The -energy soak (DESIGN.md §5k): sweep harvest severities on an
// energy-aware daemon whose sessions ride a mobility ("in the wild")
// fault timeline, and assert the robustness contract for tags that go
// dark — the stream must resume gap-free after every dark episode, the
// baseline severity must clear the delivery floor, the starved
// severity must actually cycle dark→wake, and the whole sweep must
// leak no goroutines. Each cell reports delivery and joules per
// delivered bit (the EPB-model transmit energy the daemon drained from
// the session tanks), so -out records how the energy cost of a
// delivered bit moves as the ambient harvest dries up.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"backfi/internal/core"
	"backfi/internal/energy"
	"backfi/internal/fault"
	"backfi/internal/obs"
	"backfi/internal/serve"
)

// energyParams carries the parsed flags into the energy soak.
type energyParams struct {
	severities       []float64
	wildTimeline     string
	sessions, frames int
	payloadBytes     int
	link             core.LinkConfig
	rho              float64
	retries, shards  int
	floor            float64
	goroutinesStart  int
	out, flightOut   string
}

// energyCell is one severity's soak outcome.
type energyCell struct {
	Severity      float64 `json:"severity"`
	Offered       int     `json:"offered_frames"`
	Delivered     int     `json:"delivered_frames"`
	DeliveryRate  float64 `json:"delivery_rate"`
	DarkPolls     int     `json:"dark_polls"`
	DarkPollFrac  float64 `json:"dark_poll_frac"`
	DarkEpisodes  int     `json:"dark_episodes"`
	Wakes         int     `json:"wakes"`
	SeqViolations int     `json:"seq_violations"`
	AirtimeSec    float64 `json:"airtime_sec"`
	JoulesPerBit  float64 `json:"joules_per_delivered_bit"`
	WatchdogTrips int     `json:"watchdog_trips"`
	WallSeconds   float64 `json:"wall_seconds"`
}

// parseSeverities parses the -energy-severities list.
func parseSeverities(spec string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("severity %q: %v", part, err)
		}
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("severity %v outside [0,1]", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty severity list")
	}
	return out, nil
}

// energySoak runs the sweep and gates on it.
func energySoak(p energyParams) {
	cells := make([]*energyCell, len(p.severities))
	for i, sev := range p.severities {
		cell, err := energySoakOne(p, sev)
		if err != nil {
			log.Fatalf("severity %.2g: %v", sev, err)
		}
		cells[i] = cell
		log.Printf("severity %.2g: delivery %.3f, %d dark polls (%d episodes, %d wakes), %.3g J/bit",
			sev, cell.DeliveryRate, cell.DarkPolls, cell.DarkEpisodes, cell.Wakes, cell.JoulesPerBit)
	}

	goroutinesEnd := runtime.NumGoroutine()
	for wait := 0; goroutinesEnd > p.goroutinesStart && wait < 100; wait++ {
		time.Sleep(20 * time.Millisecond)
		goroutinesEnd = runtime.NumGoroutine()
	}

	var failures []string
	for _, c := range cells {
		if c.SeqViolations > 0 {
			failures = append(failures, fmt.Sprintf("severity %.2g: %d sequence violations — a dark episode lost or duplicated frames", c.Severity, c.SeqViolations))
		}
		if c.Delivered > 0 && c.JoulesPerBit <= 0 {
			failures = append(failures, fmt.Sprintf("severity %.2g: delivered %d frames with no accounted transmit energy", c.Severity, c.Delivered))
		}
	}
	base := cells[0]
	if p.floor > 0 && base.DeliveryRate < p.floor {
		failures = append(failures, fmt.Sprintf("baseline severity %.2g delivery %.3f below floor %.3f", base.Severity, base.DeliveryRate, p.floor))
	}
	if base.Severity == 0 && base.DarkPolls != 0 {
		failures = append(failures, fmt.Sprintf("severity 0 answered %d dark polls — the gate must be invisible on a plentiful harvest", base.DarkPolls))
	}
	last := cells[len(cells)-1]
	if last.DarkPolls == 0 || last.DarkEpisodes < 1 {
		failures = append(failures, fmt.Sprintf("starved severity %.2g never went dark (%d dark polls, %d episodes) — the sweep did not exercise the energy path", last.Severity, last.DarkPolls, last.DarkEpisodes))
	}
	if last.Wakes < last.DarkEpisodes {
		failures = append(failures, fmt.Sprintf("starved severity %.2g: %d dark episodes but only %d wakes — a tag never recovered", last.Severity, last.DarkEpisodes, last.Wakes))
	}
	if goroutinesEnd > p.goroutinesStart {
		failures = append(failures, fmt.Sprintf("goroutine leak: %d before, %d after shutdown", p.goroutinesStart, goroutinesEnd))
	}

	sum := map[string]any{
		"wild_timeline":      p.wildTimeline,
		"sessions":           p.sessions,
		"frames_per_session": p.frames,
		"retries":            p.retries,
		"rho":                p.rho,
		"floor":              p.floor,
		"severities":         p.severities,
		"cells":              cells,
		"goroutines_start":   p.goroutinesStart,
		"goroutines_end":     goroutinesEnd,
		"pass":               len(failures) == 0,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		log.Fatal(err)
	}
	if p.out != "" {
		if err := mergeOut(p.out, "wild", sum); err != nil {
			log.Fatalf("out: %v", err)
		}
		log.Printf("merged wild entry into %s", p.out)
	}
	for _, f := range failures {
		log.Printf("FAIL: %s", f)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
	log.Printf("pass: %d severities, baseline delivery %.3f, starved delivery %.3f with %d dark→wake cycles",
		len(cells), base.DeliveryRate, last.DeliveryRate, last.Wakes)
}

// energySoakOne boots one energy-aware daemon at the severity and
// drives the closed-loop workload through it, retrying through dark
// episodes. The SIC watchdog stays off here — its isolation from dark
// polls is pinned by the serve-layer tests; this harness gates the
// end-to-end story instead.
func energySoakOne(p energyParams, severity float64) (*energyCell, error) {
	tl, err := fault.ParseWildTimeline(p.wildTimeline)
	if err != nil {
		return nil, fmt.Errorf("wild-timeline: %w", err)
	}
	flight := obs.NewFlightRecorder(0)
	if p.flightOut != "" {
		flight.SetDumpPath(p.flightOut)
	}
	// Cold start: open the bank 60% charged so a starved harvest drains
	// it inside the soak instead of coasting on a full-capacity seed.
	tank := serve.DefaultEnergyTank()
	tank.InitialJ = 0.6 * tank.CapacityJ
	srv, err := serve.NewServer(serve.Config{
		Addr:           "localhost:0",
		Link:           p.link,
		CoherenceRho:   p.rho,
		MaxRetries:     p.retries,
		Shards:         p.shards,
		Timeline:       tl,
		Energy:         true,
		EnergySeverity: severity,
		EnergyTank:     &tank,
		Obs:            obs.NewRegistry(),
		Flight:         flight,
	})
	if err != nil {
		return nil, err
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}

	type sessionOutcome struct {
		delivered, darkPolls, livePolls, seqViolations int
		airtimeSec                                     float64
		err                                            error
	}
	outcomes := make([]sessionOutcome, p.sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < p.sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			r := &outcomes[s]
			c, err := serve.DialClient(serve.ClientConfig{Addr: srv.Addr(), IOTimeout: 10 * time.Second})
			if err != nil {
				r.err = err
				return
			}
			defer c.Close()
			id := fmt.Sprintf("energy-%03d", s)
			for i := 0; i < p.frames; i++ {
				pay := []byte(fmt.Sprintf("%s/%06d/", id, i))
				for len(pay) < p.payloadBytes {
					pay = append(pay, byte(i))
				}
				var resp *serve.Response
				for attempt := 0; ; attempt++ {
					resp, err = c.Decode(id, pay[:p.payloadBytes])
					if errors.Is(err, serve.ErrTagDark) {
						r.darkPolls++
						if attempt < 400 {
							continue
						}
						r.err = fmt.Errorf("frame %d: tag never woke in 400 polls", i)
						return
					}
					break
				}
				if err != nil {
					r.err = fmt.Errorf("frame %d: %w", i, err)
					return
				}
				r.livePolls++
				// Gap-free resume: every live decode advances Seq by
				// exactly one, dark episodes notwithstanding.
				if resp.Seq != r.livePolls {
					r.seqViolations++
				}
				if resp.Delivered {
					r.delivered++
				}
			}
			st, err := c.Stats(id)
			if err != nil {
				r.err = err
				return
			}
			r.airtimeSec = st.AirtimeSec
		}(s)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	if err := srv.Shutdown(context.Background()); err != nil {
		return nil, fmt.Errorf("drain: %w", err)
	}

	cell := &energyCell{
		Severity:      severity,
		Offered:       p.sessions * p.frames,
		DarkEpisodes:  flight.Count(obs.FlightTagDark),
		Wakes:         flight.Count(obs.FlightTagWake),
		WatchdogTrips: flight.Count(obs.FlightWatchdogTrip),
		WallSeconds:   wall,
	}
	for i := range outcomes {
		r := &outcomes[i]
		if r.err != nil {
			return nil, fmt.Errorf("session %d: %w", i, r.err)
		}
		cell.Delivered += r.delivered
		cell.DarkPolls += r.darkPolls
		cell.SeqViolations += r.seqViolations
		cell.AirtimeSec += r.airtimeSec
	}
	cell.DeliveryRate = float64(cell.Delivered) / float64(cell.Offered)
	if total := cell.DarkPolls + cell.Offered; total > 0 {
		cell.DarkPollFrac = float64(cell.DarkPolls) / float64(total)
	}
	if cell.Delivered > 0 {
		txW, err := energy.TxPowerW(p.link.Tag.Mod, p.link.Tag.Coding, p.link.Tag.SymbolRateHz)
		if err != nil {
			return nil, err
		}
		cell.JoulesPerBit = txW * cell.AirtimeSec / float64(cell.Delivered*p.payloadBytes*8)
	}
	if p.flightOut != "" {
		if err := flight.DumpFile(p.flightOut); err != nil {
			return nil, fmt.Errorf("flight-out: %w", err)
		}
	}
	return cell, nil
}
