// Command backfi-chaos is the soak-and-chaos harness for the serving
// path: it boots two in-process reader daemons from the same link
// template — one fixed-rate, one with the closed-loop rate controller
// and SIC watchdog on — drives both through a scripted interference
// timeline while killing client connections on a fixed cadence, and
// asserts the robustness contract: the adaptive daemon's delivery
// rate must clear an absolute floor AND a multiple of the fixed
// daemon's rate, every connection kill must heal through the client's
// seeded-backoff redial path, and shutdown must leak zero goroutines.
//
// The default regime is calibrated to the paper's operating envelope:
// at 6 m with a severity-0.1 interference ramp from frame 5, the
// fixed template (QPSK 1/2 @ 1 Msym/s) delivers ~30% while the
// controller converges to BPSK 1/2 @ 0.5 Msym/s and delivers ~75%.
//
// With -out it merges a "chaos" entry into a benchmark results file
// (e.g. BENCH_results.json), preserving other sections. A failed
// assertion exits non-zero, so CI can gate on it directly.
//
// Example:
//
//	backfi-chaos -sessions 4 -frames 60 -out BENCH_results.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"backfi/internal/cluster"
	"backfi/internal/core"
	"backfi/internal/fault"
	"backfi/internal/obs"
	"backfi/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("backfi-chaos: ")

	distance := flag.Float64("distance", 6, "AP-tag distance in meters (the default regime is calibrated at 6 m)")
	timeline := flag.String("timeline", "0:0,5:0.1", "scripted fault timeline frame:severity[,frame:severity...]")
	sessions := flag.Int("sessions", 4, "concurrent sessions per daemon (one self-healing connection each)")
	frames := flag.Int("frames", 60, "frames offered per session")
	payload := flag.Int("bytes", 24, "payload bytes per frame")
	rho := flag.Float64("rho", 0.9, "packet-to-packet channel coherence")
	retries := flag.Int("retries", 1, "per-frame ARQ retry budget")
	seed := flag.Int64("seed", 1, "daemon base seed; each session offsets it by a hash of its id")
	shards := flag.Int("shards", 4, "daemon shards")
	minSymRate := flag.Float64("min-symrate", 500e3, "adaptation ladder floor in symbols/s (slow rungs cost real decode CPU)")
	wdAfter := flag.Int("watchdog-after", 2, "consecutive unhealthy SIC frames before degraded mode on the adaptive daemon (0 disables)")
	wdResidual := flag.Float64("watchdog-residual", -80, "SIC residual threshold in dBm above which a frame counts unhealthy")
	wdRecover := flag.Int("watchdog-recover", 8, "consecutive healthy frames to lift degraded mode")
	killEvery := flag.Int("kill-every", 15, "sever each session's connection every N frames (0 disables connection chaos)")
	clusterN := flag.Int("cluster", 0, "run the cluster chaos harness instead: boot N handoff-enabled nodes plus a single-node control, hard-kill one node mid-soak, and assert every session heals onto a survivor with a byte-identical stream (0 disables; needs >= 2)")
	energyMode := flag.Bool("energy", false, "run the energy soak instead: sweep -energy-severities on an energy-aware daemon under the -wild-timeline mobility script, asserting gap-free wake resume, the delivery floor at the baseline severity, and dark→wake cycling at the starved one (DESIGN.md §5k; -distance defaults to 1 m in this mode)")
	energySevs := flag.String("energy-severities", "0,0.9,1", "energy mode: comma-separated harvest severities in [0,1], swept in order — the first is the baseline -floor applies to, the last must cycle dark")
	wildTimeline := flag.String("wild-timeline", "0:0,5:0.4", "energy mode: mobility fault timeline frame:severity[,frame:severity...] parsed with Wild severities (the tag picks up speed and moderate RF impairments)")
	killAt := flag.Int("kill-at", 0, "cluster mode: hard-kill the victim node when the first session reaches this frame (0 = frames/3)")
	minRatio := flag.Float64("min-ratio", 2, "assert adaptive delivery ≥ this multiple of fixed delivery (0 disables)")
	floor := flag.Float64("floor", 0.45, "assert adaptive delivery rate ≥ this absolute floor (0 disables)")
	out := flag.String("out", "", "merge the run's summary under a \"chaos\" key in this JSON file")
	flightOut := flag.String("flight-out", "", "write the flight recorder's event dump to this JSON file (also armed for anomaly auto-dump)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON of the run to this file")
	flag.Parse()

	goroutinesStart := runtime.NumGoroutine()

	if *energyMode {
		if *clusterN > 0 {
			log.Fatal("-energy and -cluster are mutually exclusive")
		}
		// The 6 m default distance is calibrated for the adaptive-vs-
		// fixed regime; the energy soak runs a fixed-rate daemon, so it
		// defaults to the paper's 1 m headline point unless -distance
		// was given explicitly.
		dist := 1.0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "distance" {
				dist = *distance
			}
		})
		sevs, err := parseSeverities(*energySevs)
		if err != nil {
			log.Fatalf("energy-severities: %v", err)
		}
		link := core.DefaultLinkConfig(dist)
		link.Seed = *seed
		energySoak(energyParams{
			severities: sevs, wildTimeline: *wildTimeline,
			sessions: *sessions, frames: *frames, payloadBytes: *payload,
			link: link, rho: *rho, retries: *retries, shards: *shards,
			floor: *floor, goroutinesStart: goroutinesStart,
			out: *out, flightOut: *flightOut,
		})
		return
	}

	tlSpec := *timeline
	link := core.DefaultLinkConfig(*distance)
	link.Seed = *seed

	if *clusterN > 0 {
		if *clusterN < 2 {
			log.Fatalf("cluster mode needs at least 2 nodes, got %d", *clusterN)
		}
		at := *killAt
		if at <= 0 {
			at = *frames / 3
		}
		clusterChaos(clusterParams{
			nodes: *clusterN, sessions: *sessions, frames: *frames,
			payloadBytes: *payload, killAt: at, seed: *seed,
			link: link, rho: *rho, retries: *retries, shards: *shards,
			timeline: tlSpec, minSymRate: *minSymRate,
			goroutinesStart: goroutinesStart,
			out:             *out, flightOut: *flightOut, traceOut: *traceOut,
		})
		return
	}

	// One tracer and one flight recorder span the whole run — both
	// daemons and every client — so a watchdog trip on the adaptive
	// daemon lands next to the connection kills that bracketed it, each
	// carrying the trace id of the frame that tripped it. Every frame is
	// traced (SampleEvery 1): chaos runs are short and the point is a
	// complete black-box record, not a sampled one.
	tracer := obs.NewTracer(obs.TracerConfig{Seed: *seed, SampleEvery: 1})
	flight := obs.NewFlightRecorder(0)
	if *flightOut != "" {
		flight.SetDumpPath(*flightOut)
	}

	// One daemon per policy; same template, same scripted faults. Each
	// parses its own Timeline (the spec is immutable but keeping them
	// separate mirrors two independent deployments).
	boot := func(adaptive bool) *serve.Server {
		tl, err := fault.ParseTimeline(tlSpec)
		if err != nil {
			log.Fatalf("timeline: %v", err)
		}
		cfg := serve.Config{
			Addr:         "localhost:0",
			Link:         link,
			CoherenceRho: *rho,
			MaxRetries:   *retries,
			Shards:       *shards,
			Timeline:     tl,
			Obs:          obs.NewRegistry(),
			Tracer:       tracer,
			Flight:       flight,
		}
		if adaptive {
			cfg.Adapt = true
			cfg.AdaptMinSymbolRateHz = *minSymRate
			cfg.WatchdogAfter = *wdAfter
			cfg.WatchdogResidualDBm = *wdResidual
			cfg.WatchdogRecover = *wdRecover
		}
		srv, err := serve.NewServer(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			log.Fatal(err)
		}
		return srv
	}

	fixedSrv := boot(false)
	adaptSrv := boot(true)
	log.Printf("fixed daemon on %s, adaptive daemon on %s (distance=%.3gm timeline=%q)",
		fixedSrv.Addr(), adaptSrv.Addr(), *distance, tlSpec)

	fixed, err := soak(fixedSrv.Addr(), *sessions, *frames, *payload, *killEvery, *seed, flight)
	if err != nil {
		log.Fatalf("fixed daemon: %v", err)
	}
	adaptive, err := soak(adaptSrv.Addr(), *sessions, *frames, *payload, *killEvery, *seed, flight)
	if err != nil {
		log.Fatalf("adaptive daemon: %v", err)
	}

	if err := fixedSrv.Shutdown(context.Background()); err != nil {
		log.Fatalf("fixed drain: %v", err)
	}
	if err := adaptSrv.Shutdown(context.Background()); err != nil {
		log.Fatalf("adaptive drain: %v", err)
	}

	// Both daemons are down and every client closed: whatever goroutines
	// remain beyond the baseline are leaks. Poll briefly — conn handlers
	// unwind asynchronously after Shutdown returns.
	goroutinesEnd := runtime.NumGoroutine()
	for wait := 0; goroutinesEnd > goroutinesStart && wait < 100; wait++ {
		time.Sleep(20 * time.Millisecond)
		goroutinesEnd = runtime.NumGoroutine()
	}

	ratio := 0.0
	if fixed.DeliveryRate > 0 {
		ratio = adaptive.DeliveryRate / fixed.DeliveryRate
	} else if adaptive.DeliveryRate > 0 {
		ratio = adaptive.DeliveryRate / (1.0 / float64(adaptive.Offered)) // lower bound: fixed delivered < 1 frame
	}

	traces, spans, droppedSpans := tracer.Stats()
	sum := map[string]any{
		"distance_m":         *distance,
		"timeline":           tlSpec,
		"sessions":           *sessions,
		"frames_per_session": *frames,
		"retries":            *retries,
		"rho":                *rho,
		"kill_every":         *killEvery,
		"fixed":              fixed,
		"adaptive":           adaptive,
		"adaptive_vs_fixed":  ratio,
		"min_ratio":          *minRatio,
		"floor":              *floor,
		"goroutines_start":   goroutinesStart,
		"goroutines_end":     goroutinesEnd,
		"flight_events":      len(flight.Events()),
		"watchdog_trips":     flight.Count(obs.FlightWatchdogTrip),
		"redial_events":      flight.Count(obs.FlightRedial),
		"conn_broken_events": flight.Count(obs.FlightConnBroken),
		"traces":             traces,
		"trace_spans":        spans,
		"trace_spans_drop":   droppedSpans,
	}

	var failures []string
	if *minRatio > 0 && ratio < *minRatio {
		failures = append(failures, fmt.Sprintf("adaptive/fixed delivery ratio %.2f below required %.2f (adaptive %.3f, fixed %.3f)",
			ratio, *minRatio, adaptive.DeliveryRate, fixed.DeliveryRate))
	}
	if *floor > 0 && adaptive.DeliveryRate < *floor {
		failures = append(failures, fmt.Sprintf("adaptive delivery rate %.3f below floor %.3f", adaptive.DeliveryRate, *floor))
	}
	if *killEvery > 0 && adaptive.Redials < adaptive.ConnKills {
		failures = append(failures, fmt.Sprintf("adaptive clients healed %d of %d connection kills", adaptive.Redials, adaptive.ConnKills))
	}
	if goroutinesEnd > goroutinesStart {
		failures = append(failures, fmt.Sprintf("goroutine leak: %d before, %d after shutdown", goroutinesStart, goroutinesEnd))
	}
	// Satellite assertions on the black-box record itself: every scripted
	// connection kill must leave a conn_broken event AND a healing redial
	// event, and the adaptive daemon's watchdog trip must carry the trace
	// id of the frame that tripped it (the flight recorder and tracer are
	// cross-linked, not independent logs).
	totalKills := fixed.ConnKills + adaptive.ConnKills
	if *killEvery > 0 {
		if n := flight.Count(obs.FlightConnBroken); n < totalKills {
			failures = append(failures, fmt.Sprintf("flight recorder saw %d conn_broken events for %d connection kills", n, totalKills))
		}
		if n := flight.Count(obs.FlightRedial); n < totalKills {
			failures = append(failures, fmt.Sprintf("flight recorder saw %d redial events for %d connection kills", n, totalKills))
		}
	}
	if *wdAfter > 0 {
		trippedWithTrace := false
		for _, ev := range flight.Events() {
			if ev.Kind == obs.FlightWatchdogTrip && ev.Trace != 0 {
				trippedWithTrace = true
				break
			}
		}
		if !trippedWithTrace {
			failures = append(failures, "no watchdog_trip flight event with a linked trace id (did the interference regime change?)")
		}
	}
	sum["pass"] = len(failures) == 0

	if *flightOut != "" {
		if err := flight.DumpFile(*flightOut); err != nil {
			log.Fatalf("flight-out: %v", err)
		}
		log.Printf("wrote flight dump %s (%d events)", *flightOut, len(flight.Events()))
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("trace-out: %v", err)
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			log.Fatalf("trace-out: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("trace-out: %v", err)
		}
		log.Printf("wrote %s (%d traces, %d spans)", *traceOut, traces, spans)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		if err := mergeOut(*out, "chaos", sum); err != nil {
			log.Fatalf("out: %v", err)
		}
		log.Printf("merged chaos entry into %s", *out)
	}
	for _, f := range failures {
		log.Printf("FAIL: %s", f)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
	log.Printf("pass: adaptive %.3f vs fixed %.3f (%.2fx), %d conn kills healed by %d redials",
		adaptive.DeliveryRate, fixed.DeliveryRate, ratio, adaptive.ConnKills, adaptive.Redials)
}

// soakResult aggregates one daemon's soak outcome across sessions.
type soakResult struct {
	Offered      int     `json:"offered_frames"`
	Delivered    int     `json:"delivered_frames"`
	Failed       int     `json:"failed_frames"`
	DeliveryRate float64 `json:"delivery_rate"`
	// Self-healing activity: scripted connection kills, redials that
	// healed them, broken connections the clients observed.
	ConnKills   int `json:"conn_kills"`
	Redials     int `json:"redials"`
	BrokenConns int `json:"broken_conns"`
	// Session-level control-loop accounting summed over sessions.
	ConfigSwitches int `json:"config_switches"`
	Backoffs       int `json:"backoffs"`
	// FinalBitRateBps is the mean of the sessions' final tag bit rates
	// (0 when the daemon reports none, i.e. all robustness features off).
	FinalBitRateBps float64 `json:"final_bit_rate_bps"`
	WallSeconds     float64 `json:"wall_seconds"`
}

// soak drives sessions*frames decode jobs through self-healing
// clients, severing each connection every killEvery frames.
func soak(addr string, sessions, frames, payloadBytes, killEvery int, seed int64, flight *obs.FlightRecorder) (*soakResult, error) {
	type sessionOutcome struct {
		delivered, failed, kills int
		health                   serve.ClientHealth
		stats                    *serve.SessionStats
		err                      error
	}
	outcomes := make([]sessionOutcome, sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			r := &outcomes[s]
			c, err := serve.DialClient(serve.ClientConfig{
				Addr:       addr,
				IOTimeout:  10 * time.Second,
				MaxRedials: 6,
				RedialBase: 2 * time.Millisecond,
				RedialMax:  50 * time.Millisecond,
				JitterSeed: seed + int64(s),
				Flight:     flight,
			})
			if err != nil {
				r.err = err
				return
			}
			defer c.Close()
			id := fmt.Sprintf("chaos-%03d", s)
			for i := 0; i < frames; i++ {
				if killEvery > 0 && i > 0 && i%killEvery == 0 {
					c.BreakConn()
					r.kills++
				}
				p := []byte(fmt.Sprintf("%s/%06d/", id, i))
				for len(p) < payloadBytes {
					p = append(p, byte(i))
				}
				resp, err := c.Decode(id, p[:payloadBytes])
				if err == nil && resp.Delivered {
					r.delivered++
				} else {
					r.failed++
				}
			}
			r.stats, r.err = c.Stats(id)
			r.health = c.Health()
		}(s)
	}
	wg.Wait()

	res := &soakResult{Offered: sessions * frames, WallSeconds: time.Since(start).Seconds()}
	var rateSum float64
	var rateN int
	for i := range outcomes {
		r := &outcomes[i]
		if r.err != nil {
			return nil, r.err
		}
		res.Delivered += r.delivered
		res.Failed += r.failed
		res.ConnKills += r.kills
		res.Redials += r.health.Redials
		res.BrokenConns += r.health.BrokenConns
		res.ConfigSwitches += r.stats.ConfigSwitches
		res.Backoffs += r.stats.Backoffs
		if r.stats.BitRateBps > 0 {
			rateSum += r.stats.BitRateBps
			rateN++
		}
	}
	if rateN > 0 {
		res.FinalBitRateBps = rateSum / float64(rateN)
	}
	if res.Offered > 0 {
		res.DeliveryRate = float64(res.Delivered) / float64(res.Offered)
	}
	return res, nil
}

// mergeOut folds the summary into path under key, preserving every
// other top-level key ("figures", "micro", "serving", ...).
func mergeOut(path, key string, sum map[string]any) error {
	doc := map[string]any{}
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &doc); err != nil {
			return fmt.Errorf("existing %s: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	doc[key] = sum
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// clusterParams carries the parsed flags into the cluster harness.
type clusterParams struct {
	nodes, sessions, frames, payloadBytes, killAt int
	seed                                          int64
	link                                          core.LinkConfig
	rho                                           float64
	retries, shards                               int
	timeline                                      string
	minSymRate                                    float64
	goroutinesStart                               int
	out, flightOut, traceOut                      string
}

// clusterChaos is the §5j acceptance harness: N identical handoff-
// enabled adaptive nodes behind consistent-hash routing, one
// uninterrupted control node, one hard kill mid-soak. The gates are
// absolute: every session heals onto a survivor, every session's
// response stream (and final stats) is byte-identical to the control
// node's, sequence numbers stay strictly gapless (zero lost or
// duplicated frames), and the flight recorder links each kill,
// re-route, and handoff install under one trace id.
func clusterChaos(p clusterParams) {
	tracer := obs.NewTracer(obs.TracerConfig{Seed: p.seed, SampleEvery: 1})
	flight := obs.NewFlightRecorder(16384)
	if p.flightOut != "" {
		flight.SetDumpPath(p.flightOut)
	}
	if p.killAt >= p.frames {
		log.Fatalf("kill-at %d is past the last frame %d", p.killAt, p.frames-1)
	}

	boot := func() *serve.Server {
		tl, err := fault.ParseTimeline(p.timeline)
		if err != nil {
			log.Fatalf("timeline: %v", err)
		}
		srv, err := serve.NewServer(serve.Config{
			Addr:                 "localhost:0",
			Link:                 p.link,
			CoherenceRho:         p.rho,
			MaxRetries:           p.retries,
			Shards:               p.shards,
			Timeline:             tl,
			Handoff:              true,
			Adapt:                true,
			AdaptMinSymbolRateHz: p.minSymRate,
			Obs:                  obs.NewRegistry(),
			Tracer:               tracer,
			Flight:               flight,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			log.Fatal(err)
		}
		return srv
	}
	control := boot()
	byAddr := map[string]*serve.Server{}
	addrs := make([]string, p.nodes)
	for i := range addrs {
		n := boot()
		addrs[i] = n.Addr()
		byAddr[n.Addr()] = n
	}
	template := serve.ClientConfig{
		Proto:      "binary",
		IOTimeout:  10 * time.Second,
		MaxRedials: 3,
		RedialBase: 2 * time.Millisecond,
		RedialMax:  20 * time.Millisecond,
	}
	sessionID := func(s int) string { return fmt.Sprintf("cluster-%03d", s) }

	// Routing is deterministic, so the victim — the node owning the
	// first session — and its session count are known before any frame
	// is served.
	probe, err := cluster.New(cluster.Config{Addrs: addrs, Client: template})
	if err != nil {
		log.Fatal(err)
	}
	victim, _ := probe.Owner(sessionID(0))
	victimSessions := 0
	for s := 0; s < p.sessions; s++ {
		if o, _ := probe.Owner(sessionID(s)); o == victim {
			victimSessions++
		}
	}
	probe.Close()
	log.Printf("control on %s; %d nodes %v; victim %s owns %d/%d sessions, dies at frame %d",
		control.Addr(), p.nodes, addrs, victim, victimSessions, p.sessions, p.killAt)

	var killOnce sync.Once
	kill := func() {
		killOnce.Do(func() {
			log.Printf("killing %s", victim)
			byAddr[victim].Kill()
		})
	}

	type outcome struct {
		err           error
		delivered     int
		controlDel    int
		mismatch      string
		seqViolations int
		statsDiverged bool
	}
	outcomes := make([]outcome, p.sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < p.sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			r := &outcomes[s]
			id := sessionID(s)
			cc, err := serve.DialClient(serve.ClientConfig{
				Addr: control.Addr(), Proto: "binary", IOTimeout: 10 * time.Second,
			})
			if err != nil {
				r.err = err
				return
			}
			defer cc.Close()
			cl, err := cluster.New(cluster.Config{
				Addrs: addrs, Client: template, Flight: flight, TraceSeed: p.seed,
			})
			if err != nil {
				r.err = err
				return
			}
			defer cl.Close()
			for i := 0; i < p.frames; i++ {
				if i == p.killAt {
					kill()
				}
				pay := []byte(fmt.Sprintf("%s/%06d/", id, i))
				for len(pay) < p.payloadBytes {
					pay = append(pay, byte(i))
				}
				pay = pay[:p.payloadBytes]
				want, err := cc.Decode(id, pay)
				if err != nil {
					r.err = fmt.Errorf("control frame %d: %w", i, err)
					return
				}
				got, err := cl.Decode(id, pay)
				if err != nil {
					r.err = fmt.Errorf("cluster frame %d did not heal: %w", i, err)
					return
				}
				if want.Delivered {
					r.controlDel++
				}
				if got.Delivered {
					r.delivered++
				}
				if got.Seq != i+1 {
					r.seqViolations++
				}
				wb, _ := json.Marshal(want)
				gb, _ := json.Marshal(got)
				if r.mismatch == "" && string(wb) != string(gb) {
					r.mismatch = fmt.Sprintf("frame %d:\n  cluster %s\n  control %s", i, gb, wb)
				}
			}
			cstats, cerr := cc.Stats(id)
			gstats, gerr := cl.Stats(id)
			if cerr != nil || gerr != nil {
				r.err = errors.Join(cerr, gerr)
				return
			}
			r.statsDiverged = *cstats != *gstats
		}(s)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	for addr, srv := range byAddr {
		if addr == victim {
			continue
		}
		if err := srv.Shutdown(context.Background()); err != nil {
			log.Fatalf("node %s drain: %v", addr, err)
		}
	}
	if err := control.Shutdown(context.Background()); err != nil {
		log.Fatalf("control drain: %v", err)
	}
	goroutinesEnd := runtime.NumGoroutine()
	for wait := 0; goroutinesEnd > p.goroutinesStart && wait < 100; wait++ {
		time.Sleep(20 * time.Millisecond)
		goroutinesEnd = runtime.NumGoroutine()
	}

	var failures []string
	offered := p.sessions * p.frames
	delivered, controlDel, seqViolations := 0, 0, 0
	byteIdentical := true
	for s := range outcomes {
		r := &outcomes[s]
		if r.err != nil {
			failures = append(failures, fmt.Sprintf("session %s: %v", sessionID(s), r.err))
			continue
		}
		delivered += r.delivered
		controlDel += r.controlDel
		seqViolations += r.seqViolations
		if r.mismatch != "" {
			byteIdentical = false
			failures = append(failures, fmt.Sprintf("session %s diverged from control at %s", sessionID(s), r.mismatch))
		}
		if r.statsDiverged {
			failures = append(failures, fmt.Sprintf("session %s: final stats diverged from control", sessionID(s)))
		}
	}
	if seqViolations > 0 {
		failures = append(failures, fmt.Sprintf("%d sequence violations (lost or duplicated frames)", seqViolations))
	}
	if delivered < controlDel {
		failures = append(failures, fmt.Sprintf("cluster delivered %d < control %d", delivered, controlDel))
	}

	// Black-box gates: one node_down + one reroute + one handoff
	// install per victim-owned session (each session runs its own
	// cluster client, so each heals independently), and every reroute's
	// trace id must also appear on a handoff_install — that shared id
	// is what strings kill -> re-route -> handoff into one story.
	nodeDowns := flight.Count(obs.FlightNodeDown)
	reroutes := flight.Count(obs.FlightReroute)
	installs := 0 // client-side installs: only they carry the episode trace
	rerouteTraces := map[uint64]bool{}
	installTraces := map[uint64]bool{}
	for _, ev := range flight.Events() {
		switch ev.Kind {
		case obs.FlightReroute:
			if ev.Trace == 0 {
				failures = append(failures, fmt.Sprintf("reroute event without trace id: %+v", ev))
			}
			rerouteTraces[ev.Trace] = true
		case obs.FlightHandoffInstall:
			if ev.Trace != 0 {
				installs++
				installTraces[ev.Trace] = true
			}
		}
	}
	if nodeDowns != victimSessions {
		failures = append(failures, fmt.Sprintf("node_down events = %d, want %d (one per victim session client)", nodeDowns, victimSessions))
	}
	if reroutes != victimSessions {
		failures = append(failures, fmt.Sprintf("reroute events = %d, want %d", reroutes, victimSessions))
	}
	if installs != victimSessions {
		failures = append(failures, fmt.Sprintf("client handoff_install events = %d, want %d", installs, victimSessions))
	}
	for tr := range rerouteTraces {
		if !installTraces[tr] {
			failures = append(failures, fmt.Sprintf("reroute trace %x has no linked handoff_install", tr))
		}
	}
	if goroutinesEnd > p.goroutinesStart {
		failures = append(failures, fmt.Sprintf("goroutine leak: %d before, %d after shutdown", p.goroutinesStart, goroutinesEnd))
	}

	traces, spans, droppedSpans := tracer.Stats()
	sum := map[string]any{
		"nodes":              p.nodes,
		"sessions":           p.sessions,
		"frames_per_session": p.frames,
		"kill_at_frame":      p.killAt,
		"victim":             victim,
		"victim_sessions":    victimSessions,
		"offered_frames":     offered,
		"delivered_frames":   delivered,
		"control_delivered":  controlDel,
		"delivery_rate":      float64(delivered) / float64(offered),
		"byte_identical":     byteIdentical,
		"seq_violations":     seqViolations,
		"node_down_events":   nodeDowns,
		"reroute_events":     reroutes,
		"handoff_installs":   installs,
		"goroutines_start":   p.goroutinesStart,
		"goroutines_end":     goroutinesEnd,
		"wall_seconds":       wall,
		"traces":             traces,
		"trace_spans":        spans,
		"trace_spans_drop":   droppedSpans,
		"pass":               len(failures) == 0,
	}

	if p.flightOut != "" {
		if err := flight.DumpFile(p.flightOut); err != nil {
			log.Fatalf("flight-out: %v", err)
		}
		log.Printf("wrote flight dump %s (%d events)", p.flightOut, len(flight.Events()))
	}
	if p.traceOut != "" {
		f, err := os.Create(p.traceOut)
		if err != nil {
			log.Fatalf("trace-out: %v", err)
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			log.Fatalf("trace-out: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("trace-out: %v", err)
		}
		log.Printf("wrote %s (%d traces, %d spans)", p.traceOut, traces, spans)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		log.Fatal(err)
	}
	if p.out != "" {
		if err := mergeOut(p.out, "cluster_chaos", sum); err != nil {
			log.Fatalf("out: %v", err)
		}
		log.Printf("merged cluster_chaos entry into %s", p.out)
	}
	for _, f := range failures {
		log.Printf("FAIL: %s", f)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
	log.Printf("pass: %d sessions x %d frames across %d nodes, %d healed off %s, streams byte-identical to control",
		p.sessions, p.frames, p.nodes, victimSessions, victim)
}
