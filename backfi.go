// Package backfi is a pure-Go reproduction of "BackFi: High Throughput
// WiFi Backscatter" (Bharadia, Joshi, Kotaru, Katti — SIGCOMM 2015).
//
// BackFi lets a battery-free IoT tag piggyback megabit-class uplink
// data on ordinary WiFi transmissions: the tag phase-modulates the
// reflection of the AP's own packet, and the AP — transmitting at the
// same time — cancels its self-interference, estimates the combined
// two-way tag channel, and decodes the slow tag symbols by
// maximal-ratio combining the many WiFi-rate samples inside each one.
//
// This package is the public facade over the simulator's subsystems:
//
//   - Link / LinkConfig: an end-to-end BackFi exchange (WiFi excitation
//     → channels → tag → self-interference cancellation → MRC decode).
//   - TagConfig: the tag's PSK order, code rate, and switching rate
//     (the 36 operating points of the paper's Fig. 7).
//   - ChannelConfig: the calibrated testbed model (placement, path
//     loss, fading, TX hardware error).
//   - Evaluate / Sweep / BestThroughput / MinREPBAtThroughput: the
//     paper's rate-adaptation policies over Monte-Carlo feasibility.
//   - REPB / EPB: the tag energy model fitted to the paper's Fig. 7.
//
// The experiment harnesses that regenerate every table and figure of
// the paper's evaluation live in internal/experiments and are exposed
// through cmd/backfi-bench and the benchmarks in bench_test.go.
package backfi

import (
	"net/http"

	"backfi/internal/adapt"
	"backfi/internal/channel"
	"backfi/internal/core"
	"backfi/internal/energy"
	"backfi/internal/fault"
	"backfi/internal/fec"
	"backfi/internal/mac"
	"backfi/internal/obs"
	"backfi/internal/serve"
	"backfi/internal/tag"
)

// Re-exported configuration and result types.
type (
	// LinkConfig assembles one BackFi link.
	LinkConfig = core.LinkConfig
	// Link is a realized link: one placement plus tag and reader.
	Link = core.Link
	// PacketResult reports one end-to-end packet exchange.
	PacketResult = core.PacketResult
	// Feasibility summarizes Monte-Carlo trials of one configuration.
	Feasibility = core.Feasibility
	// TagConfig selects the tag's transmission parameters.
	TagConfig = tag.Config
	// TagModulation is the tag's PSK order.
	TagModulation = tag.Modulation
	// ChannelConfig describes one placement of AP, tag and environment.
	ChannelConfig = channel.Config
	// CodeRate is a convolutional code rate (1/2, 2/3, 3/4).
	CodeRate = fec.CodeRate
	// FaultProfile describes a deterministic RF-impairment and
	// fault-injection profile (DESIGN.md §5d). Set a pointer to one on
	// LinkConfig.Faults; nil leaves the link bit-identical to an
	// unfaulted build.
	FaultProfile = fault.Profile
)

// ErrTagNoWake reports that the tag's envelope detector did not fire
// (or fired too late) for a packet — the expected outcome at the range
// edge, distinguishable via errors.Is from genuine pipeline failures.
var ErrTagNoWake = core.ErrTagNoWake

// StandardFaultProfile scales every impairment class together with one
// severity knob in [0,1]: 0 is the paper's ideal front end, 1 is a
// hostile deployment (strong CFO, phase noise, coarse ADC, bursty
// co-channel interference, packet faults).
func StandardFaultProfile(severity float64) FaultProfile { return fault.Standard(severity) }

// Tag modulation constants.
const (
	BPSK  = tag.BPSK
	QPSK  = tag.QPSK
	PSK16 = tag.PSK16
)

// Code rate constants.
const (
	Rate12 = fec.Rate12
	Rate23 = fec.Rate23
	Rate34 = fec.Rate34
)

// Link-layer timing constants of paper Fig. 4.
const (
	// SilentSamples is the 16 µs silent period (20 MHz samples).
	SilentSamples = tag.SilentSamples
	// DefaultPreambleChips is the standard 32 µs tag preamble.
	DefaultPreambleChips = tag.DefaultPreambleChips
	// ExtendedPreambleChips is the 96 µs variant of paper Fig. 8.
	ExtendedPreambleChips = tag.ExtendedPreambleChips
)

// NewLink draws a placement realization and builds the endpoints.
func NewLink(cfg LinkConfig) (*Link, error) { return core.NewLink(cfg) }

// DefaultLinkConfig returns the paper's standard operating point at
// the given AP–tag distance.
func DefaultLinkConfig(distanceM float64) LinkConfig { return core.DefaultLinkConfig(distanceM) }

// DefaultChannelConfig returns the calibrated testbed model.
func DefaultChannelConfig(distanceM float64) ChannelConfig { return channel.DefaultConfig(distanceM) }

// StandardConfigs enumerates the paper's 36 tag configurations.
func StandardConfigs(preambleChips, id int) []TagConfig {
	return core.StandardConfigs(preambleChips, id)
}

// Evaluate runs Monte-Carlo packet trials of one configuration.
func Evaluate(chanCfg ChannelConfig, tcfg TagConfig, trials, payloadBytes int, seed int64) (Feasibility, error) {
	return core.Evaluate(chanCfg, tcfg, core.DefaultLinkConfig(chanCfg.DistanceM).Reader, trials, payloadBytes, seed)
}

// Sweep evaluates every configuration at one placement.
func Sweep(chanCfg ChannelConfig, cfgs []TagConfig, trials, payloadBytes int, seed int64) ([]Feasibility, error) {
	return core.Sweep(chanCfg, cfgs, core.DefaultLinkConfig(chanCfg.DistanceM).Reader, trials, payloadBytes, seed)
}

// BestThroughput returns the fastest decodable configuration.
func BestThroughput(results []Feasibility) (Feasibility, bool) {
	return core.BestThroughput(results)
}

// MinREPBAtThroughput returns the cheapest configuration achieving a
// target bit rate — the paper's rate-adaptation policy.
func MinREPBAtThroughput(results []Feasibility, minBps float64) (Feasibility, bool) {
	return core.MinREPBAtThroughput(results, minBps)
}

// REPB returns the relative energy per bit of a tag configuration
// (paper Fig. 7; reference = BPSK 1/2 at 1 Msym/s).
func REPB(mod TagModulation, coding CodeRate, symbolRateHz float64) (float64, error) {
	return energy.REPB(mod, coding, symbolRateHz)
}

// EPB returns the absolute modeled energy per bit in joules.
func EPB(mod TagModulation, coding CodeRate, symbolRateHz float64) (float64, error) {
	return energy.EPB(mod, coding, symbolRateHz)
}

// MIMO extension (paper Sec. 7): multiple receive antennas at the AP
// add spatial diversity on top of the temporal MRC gain.
type (
	// MIMOLink is a BackFi link with multiple AP receive antennas.
	MIMOLink = core.MIMOLink
	// MIMOPacketResult reports one multi-antenna exchange.
	MIMOPacketResult = core.MIMOPacketResult
)

// NewMIMOLink draws a placement with nrx receive antennas.
func NewMIMOLink(cfg LinkConfig, nrx int) (*MIMOLink, error) {
	return core.NewMIMOLink(cfg, nrx)
}

// Session layer: one placement with slowly evolving channels and
// stop-and-wait ARQ — what an application actually talks to.
type (
	// Session is a long-lived BackFi connection.
	Session = core.Session
	// SessionStats summarizes a session's history.
	SessionStats = core.SessionStats
	// MultiTagLink is a deployment of several tags around one AP,
	// addressed individually by wake sequence.
	MultiTagLink = core.MultiTagLink
)

// NewSession opens a session at one placement; coherenceRho is the
// packet-to-packet channel correlation and maxRetries the ARQ budget.
func NewSession(cfg LinkConfig, coherenceRho float64, maxRetries int) (*Session, error) {
	return core.NewSession(cfg, coherenceRho, maxRetries)
}

// NewMultiTagLink places one tag per distance (IDs 0..n-1).
func NewMultiTagLink(cfg LinkConfig, distances []float64) (*MultiTagLink, error) {
	return core.NewMultiTagLink(cfg, distances)
}

// Multi-tag MAC and collision-aware serving (DESIGN.md §5i): a
// deterministic slotted arbiter schedules tag groups, one excitation
// lights a whole group, and the reader jointly decodes the colliding
// reflections by successive cancellation.
type (
	// TagMACConfig sizes the deterministic slotted arbiter.
	TagMACConfig = mac.TagMACConfig
	// TagMAC maps a frame index to the tag group polled in that slot —
	// a pure function of (seed, frame), so every shard agrees.
	TagMAC = mac.TagMAC
	// MultiTagSessionConfig shapes one multi-tag serving session.
	MultiTagSessionConfig = core.MultiTagSessionConfig
	// MultiTagSession runs a fixed tag group slot by slot, decoding
	// every collided member of each excitation jointly.
	MultiTagSession = core.MultiTagSession
	// MultiTagStats aggregates a session's slot outcomes.
	MultiTagStats = core.MultiTagStats
	// SlotResult is one jointly decoded slot.
	SlotResult = core.SlotResult
	// SlotPool shares immutable excitation templates across sessions
	// (copy-on-write session state).
	SlotPool = core.SlotPool
)

// NewTagMAC builds the deterministic slotted arbiter.
func NewTagMAC(cfg TagMACConfig) (*TagMAC, error) { return mac.NewTagMAC(cfg) }

// NewMultiTagSession realizes a multi-tag deployment: cfg.Tags polled
// tags (plus an impostor when configured) on a geometric range ladder,
// all sharing one wake group.
func NewMultiTagSession(cfg MultiTagSessionConfig) (*MultiTagSession, error) {
	return core.NewMultiTagSession(cfg)
}

// NewSlotPool builds an empty excitation-template pool keyed by seed.
func NewSlotPool(seed int64) *SlotPool { return core.NewSlotPool(seed) }

// Observability (DESIGN.md §5c): a registry set on LinkConfig.Obs
// collects per-stage durations, SIC/decoder health, and SNR/BER
// histograms from every packet the link runs. Metrics are write-only
// observers — enabling them never changes link output — and a nil
// registry costs nothing.
type (
	// MetricsRegistry aggregates counters, gauges and histograms.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry.
	MetricsSnapshot = obs.Snapshot
	// RunManifest records one run's config, build and final metrics.
	RunManifest = obs.Manifest
)

// NewMetricsRegistry creates an empty registry to set on
// LinkConfig.Obs (or experiments.Options.Obs via cmd/backfi-bench).
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// ServeMetrics exposes the registry on addr: Prometheus text on
// /metrics, JSON on /metrics.json, and net/http/pprof under
// /debug/pprof/. It returns the running server and the bound address
// (useful with a ":0" port).
func ServeMetrics(addr string, r *MetricsRegistry) (*http.Server, string, error) {
	return obs.Serve(addr, r)
}

// NewRunManifest starts a per-run provenance record (build info,
// config, timed phases, final metric snapshot).
func NewRunManifest(command string, config map[string]any) *RunManifest {
	return obs.NewManifest(command, config)
}

// Serving layer (DESIGN.md §5e): a long-running reader daemon that
// decodes many concurrent tag sessions over a length-prefixed TCP
// protocol, sharding session state by id with bounded queues, typed
// backpressure, per-job deadlines and graceful drain. The daemon and a
// closed-loop load generator ship as cmd/backfi-readerd and
// cmd/backfi-loadgen.
type (
	// ReaderConfig assembles one reader daemon.
	ReaderConfig = serve.Config
	// ReaderServer is a running reader daemon.
	ReaderServer = serve.Server
	// ReaderClient is a connection to a reader daemon.
	ReaderClient = serve.Client
	// ReaderResponse is one daemon reply (decode outcome or stats).
	ReaderResponse = serve.Response
)

// Typed serving rejections, checked with errors.Is on client errors: a
// full shard queue, a draining daemon, an expired per-job deadline.
var (
	ErrReaderQueueFull = serve.ErrQueueFull
	ErrReaderDraining  = serve.ErrDraining
	ErrReaderDeadline  = serve.ErrDeadline
)

// NewReaderServer builds a reader daemon; call Start on the result to
// listen and Shutdown to drain it.
func NewReaderServer(cfg ReaderConfig) (*ReaderServer, error) { return serve.NewServer(cfg) }

// DialReader connects a client to a reader daemon.
func DialReader(addr string) (*ReaderClient, error) { return serve.Dial(addr) }

// Robustness layer (DESIGN.md §5f): closed-loop link adaptation over
// the standard configuration ladder, scripted fault timelines for
// reproducible soak runs, deterministic ARQ backoff accounting, and a
// self-healing reader client (I/O deadlines, seeded-jitter redial
// backoff, per-session circuit breaking). The chaos harness that
// exercises all of it end to end ships as cmd/backfi-chaos.
type (
	// AdaptConfig tunes the rate controller's hysteresis (zero-valued
	// fields take package defaults).
	AdaptConfig = adapt.Config
	// AdaptObservation is one packet outcome fed to the controller.
	AdaptObservation = adapt.Observation
	// AdaptSwitch records one controller ladder move.
	AdaptSwitch = adapt.Switch
	// RateController walks the configuration ladder from packet
	// observations — a pure, deterministic state machine.
	RateController = adapt.Controller
	// BackoffPolicy adds deterministic virtual-time backoff between a
	// session's ARQ retries (accounted, never slept).
	BackoffPolicy = core.BackoffPolicy
	// FaultTimeline schedules fault-profile switches at frame indices.
	FaultTimeline = fault.Timeline
	// FaultTimelineStep is one scheduled switch.
	FaultTimelineStep = fault.TimelineStep
	// ReaderClientConfig tunes the self-healing reader client; the zero
	// value reproduces the legacy fragile client.
	ReaderClientConfig = serve.ClientConfig
	// ReaderClientHealth snapshots a client's self-healing counters.
	ReaderClientHealth = serve.ClientHealth
)

// Self-healing client errors, checked with errors.Is: a connection
// that broke mid-call (the underlying cause stays matchable through
// it), a call shed by an open per-session circuit, use after Close.
var (
	ErrReaderConnBroken   = serve.ErrConnBroken
	ErrReaderBreakerOpen  = serve.ErrBreakerOpen
	ErrReaderClientClosed = serve.ErrClientClosed
)

// NewRateController builds a controller over the given ladder,
// starting at start (which must be on the ladder).
func NewRateController(cfg AdaptConfig, ladder []TagConfig, start TagConfig) (*RateController, error) {
	return adapt.NewController(cfg, ladder, start)
}

// AdaptLadder orders configurations for the controller: ascending bit
// rate, deterministic tie-break.
func AdaptLadder(cfgs []TagConfig) []TagConfig { return adapt.Ladder(cfgs) }

// ParseFaultTimeline parses "frame:severity[,frame:severity...]" into
// a timeline of Standard profiles (severity 0 = faults off).
func ParseFaultTimeline(spec string) (*FaultTimeline, error) { return fault.ParseTimeline(spec) }

// NewAdaptiveSession opens a session whose tag configuration is driven
// by a rate controller over the standard ladder (restricted to symbol
// rates ≥ minSymbolRateHz when non-zero), starting at cfg.Tag.
func NewAdaptiveSession(cfg LinkConfig, coherenceRho float64, maxRetries int, actrl AdaptConfig, minSymbolRateHz float64) (*Session, error) {
	return core.NewAdaptiveSession(cfg, coherenceRho, maxRetries, actrl, minSymbolRateHz)
}

// DialReaderClient connects with the self-healing configuration.
func DialReaderClient(cfg ReaderClientConfig) (*ReaderClient, error) { return serve.DialClient(cfg) }

// Observability, continued (DESIGN.md §5h): per-frame distributed
// tracing with deterministic head sampling, a black-box flight recorder
// for rare serving events, and rolling-window SLO burn-rate tracking.
// All three follow the registry's contract — pure observers, nil-safe,
// and free when disabled.
type (
	// Tracer samples frames into a bounded in-memory span ring;
	// exported traces open in chrome://tracing or Perfetto.
	Tracer = obs.Tracer
	// TracerConfig sets the sampling seed, rate, and ring capacity.
	TracerConfig = obs.TracerConfig
	// TraceCtx is one frame's sampling decision, threaded through the
	// serve and decode stages. The zero value records nothing.
	TraceCtx = obs.TraceCtx
	// TraceEvent is one recorded span.
	TraceEvent = obs.TraceEvent
	// FlightRecorder keeps the last N structured serving events and can
	// auto-dump them to a file when an anomaly is recorded.
	FlightRecorder = obs.FlightRecorder
	// FlightEvent is one recorded flight event.
	FlightEvent = obs.FlightEvent
	// SLOTracker evaluates delivery-rate and p99-latency objectives
	// over a rolling window and reports burn rates against them.
	SLOTracker = obs.SLO
	// SLOTrackerConfig sets the window and objectives (zero-valued
	// fields take package defaults).
	SLOTrackerConfig = obs.SLOConfig
	// SLOSnapshot is one point-in-time SLO evaluation.
	SLOSnapshot = obs.SLOSnapshot
	// OpsServeOpts assembles the ops HTTP surface: metrics, trace and
	// flight-recorder dumps, health and readiness.
	OpsServeOpts = obs.ServeOpts
)

// NewTracer builds a span tracer; set it on ReaderConfig.Tracer and
// ReaderClientConfig.Tracer (a client and daemon sharing seed and rate
// derive identical per-frame trace ids).
func NewTracer(cfg TracerConfig) *Tracer { return obs.NewTracer(cfg) }

// NewFlightRecorder builds a flight recorder holding the last capacity
// events (0 = default).
func NewFlightRecorder(capacity int) *FlightRecorder { return obs.NewFlightRecorder(capacity) }

// NewSLOTracker builds a rolling-window SLO evaluator; set it on
// ReaderConfig.SLO.
func NewSLOTracker(cfg SLOTrackerConfig) *SLOTracker { return obs.NewSLO(cfg) }

// ServeOps exposes the full ops surface on addr: everything
// ServeMetrics serves, plus /debug/trace, /debug/flightrecorder,
// /healthz and /readyz. It returns the running server and the bound
// address.
func ServeOps(addr string, o OpsServeOpts) (*http.Server, string, error) {
	return obs.ServeOps(addr, o)
}
