package backfi

import (
	"errors"
	"testing"
)

// noPanic runs f and converts any panic into a test failure: the
// hardening contract is that no invalid configuration reachable from
// the public facade may panic — every constructor returns an error.
func noPanic(t *testing.T, name string, f func() error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: panicked: %v", name, r)
		}
	}()
	if err := f(); err == nil {
		t.Fatalf("%s: expected a validation error, got nil", name)
	}
}

// TestFacadeRejectsBadConfigWithoutPanic drives every facade entry
// point with invalid configurations. Each must return an error; none
// may panic.
func TestFacadeRejectsBadConfigWithoutPanic(t *testing.T) {
	valid := DefaultLinkConfig(1)

	cases := []struct {
		name   string
		mutate func(LinkConfig) LinkConfig
	}{
		{"zero channel distance", func(c LinkConfig) LinkConfig {
			c.Channel.DistanceM = -1
			return c
		}},
		{"negative path loss exponent", func(c LinkConfig) LinkConfig {
			c.Channel.PathLossExponent = -2
			return c
		}},
		{"zero env taps", func(c LinkConfig) LinkConfig {
			c.Channel.EnvTaps = -1
			return c
		}},
		{"bad tap decay", func(c LinkConfig) LinkConfig {
			c.Channel.DecayPerTap = 3
			return c
		}},
		{"unknown modulation", func(c LinkConfig) LinkConfig {
			c.Tag.Mod = TagModulation(99)
			return c
		}},
		{"unknown code rate", func(c LinkConfig) LinkConfig {
			c.Tag.Coding = CodeRate(99)
			return c
		}},
		{"zero symbol rate", func(c LinkConfig) LinkConfig {
			c.Tag.SymbolRateHz = 0
			return c
		}},
		{"non-divisor symbol rate", func(c LinkConfig) LinkConfig {
			c.Tag.SymbolRateHz = 3e6
			return c
		}},
		{"negative tag ID", func(c LinkConfig) LinkConfig {
			c.Tag.ID = -1
			return c
		}},
		{"zero preamble", func(c LinkConfig) LinkConfig {
			c.Tag.PreambleChips = 0
			return c
		}},
		{"zero reader channel taps", func(c LinkConfig) LinkConfig {
			c.Reader.ChannelTaps = 0
			return c
		}},
		{"negative reader lambda", func(c LinkConfig) LinkConfig {
			c.Reader.Lambda = -1
			return c
		}},
		{"zero SIC digital taps", func(c LinkConfig) LinkConfig {
			c.Reader.SIC.DigitalTaps = 0
			return c
		}},
		{"analog SIC without quantizer bits", func(c LinkConfig) LinkConfig {
			c.Reader.SIC.AnalogTaps = 8
			c.Reader.SIC.AnalogPhaseBits = 0
			return c
		}},
		{"fault probability above one", func(c LinkConfig) LinkConfig {
			c.Faults = &FaultProfile{TruncateProb: 1.5}
			return c
		}},
		{"negative fault ADC bits", func(c LinkConfig) LinkConfig {
			c.Faults = &FaultProfile{ADCBits: -3}
			return c
		}},
		{"interference duty of one", func(c LinkConfig) LinkConfig {
			c.Faults = &FaultProfile{InterfDuty: 1, InterfPowerDBm: -60}
			return c
		}},
	}

	for _, tc := range cases {
		cfg := tc.mutate(valid)
		noPanic(t, "NewLink/"+tc.name, func() error {
			_, err := NewLink(cfg)
			return err
		})
		noPanic(t, "NewMIMOLink/"+tc.name, func() error {
			_, err := NewMIMOLink(cfg, 2)
			return err
		})
		noPanic(t, "NewSession/"+tc.name, func() error {
			_, err := NewSession(cfg, 0.99, 2)
			return err
		})
		noPanic(t, "NewMultiTagLink/"+tc.name, func() error {
			_, err := NewMultiTagLink(cfg, []float64{1, 2})
			return err
		})
		noPanic(t, "Evaluate/"+tc.name, func() error {
			_, err := Evaluate(cfg.Channel, cfg.Tag, 1, 8, 1)
			if err == nil && (cfg.Reader.ChannelTaps != valid.Reader.ChannelTaps ||
				cfg.Reader.Lambda != valid.Reader.Lambda ||
				cfg.Reader.SIC != valid.Reader.SIC ||
				cfg.Faults != nil) {
				// Evaluate builds its own reader config and takes no fault
				// profile, so reader/fault mutations legitimately pass.
				return errors.New("reader/fault case not visible to Evaluate")
			}
			return err
		})
	}

	noPanic(t, "NewMIMOLink/zero antennas", func() error {
		_, err := NewMIMOLink(valid, 0)
		return err
	})
	noPanic(t, "NewSession/bad rho", func() error {
		_, err := NewSession(valid, 2, 1)
		return err
	})
	noPanic(t, "NewMultiTagLink/no tags", func() error {
		_, err := NewMultiTagLink(valid, nil)
		return err
	})
}

// TestFacadeFaultProfileRoundTrip checks the exported severity knob:
// zero severity disables injection, valid severities validate, and an
// impaired link still runs end to end.
func TestFacadeFaultProfileRoundTrip(t *testing.T) {
	p0 := StandardFaultProfile(0)
	if p0.Enabled() {
		t.Fatal("severity 0 should disable injection")
	}
	for _, sev := range []float64{0.25, 0.5, 1} {
		p := StandardFaultProfile(sev)
		if err := p.Validate(); err != nil {
			t.Fatalf("severity %v: %v", sev, err)
		}
		if !p.Enabled() {
			t.Fatalf("severity %v should enable injection", sev)
		}
	}

	cfg := DefaultLinkConfig(1)
	p := StandardFaultProfile(0.5)
	cfg.Faults = &p
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := link.RunPacket(link.RandomPayload(24)); err != nil && !errors.Is(err, ErrTagNoWake) {
		t.Fatalf("impaired link: %v", err)
	}
}
