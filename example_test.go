package backfi_test

import (
	"fmt"

	"backfi"
)

// The simplest possible use: one packet from a tag at 1 m.
func ExampleNewLink() {
	cfg := backfi.DefaultLinkConfig(1.0)
	cfg.Seed = 42
	link, err := backfi.NewLink(cfg)
	if err != nil {
		panic(err)
	}
	res, err := link.RunPacket([]byte("hello"))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.PayloadOK, string(res.Decode.Payload))
	// Output: true hello
}

// Rate adaptation: evaluate candidate configurations and pick the
// cheapest one that sustains a target rate.
func ExampleMinREPBAtThroughput() {
	candidates := []backfi.TagConfig{
		{Mod: backfi.QPSK, Coding: backfi.Rate12, SymbolRateHz: 1e6, PreambleChips: 32, ID: 1},
		{Mod: backfi.BPSK, Coding: backfi.Rate23, SymbolRateHz: 2e6, PreambleChips: 32, ID: 1},
	}
	results, err := backfi.Sweep(backfi.DefaultChannelConfig(1), candidates, 3, 16, 7)
	if err != nil {
		panic(err)
	}
	best, ok := backfi.MinREPBAtThroughput(results, 1e6)
	fmt.Println(ok, best.Cfg.Mod == backfi.BPSK) // BPSK 2/3 @2M is cheaper per bit
	// Output: true true
}

// The Fig. 7 energy model: the reference configuration is 1.0 by
// definition, and 16PSK costs more per bit at the same symbol rate.
func ExampleREPB() {
	ref, _ := backfi.REPB(backfi.BPSK, backfi.Rate12, 1e6)
	psk16, _ := backfi.REPB(backfi.PSK16, backfi.Rate12, 1e6)
	fmt.Printf("%.2f %v\n", ref, psk16 > ref)
	// Output: 1.00 true
}

// A session delivers a stream with ARQ over an evolving channel.
func ExampleNewSession() {
	cfg := backfi.DefaultLinkConfig(2)
	cfg.Seed = 8
	s, err := backfi.NewSession(cfg, 0.95, 2)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok, err := s.Send([]byte("reading")); err != nil || !ok {
			panic("undelivered")
		}
	}
	fmt.Println(s.Stats.FramesDelivered)
	// Output: 3
}
