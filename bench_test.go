package backfi

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (Sec. 6). Each iteration regenerates the figure at
// quick fidelity and reports its headline number as a custom metric, so
// `go test -bench=. -benchmem` both times the harness and prints the
// reproduced results.

import (
	"testing"

	"backfi/internal/experiments"
)

// BenchmarkFig7REPBTable regenerates the REPB/throughput table
// (paper Fig. 7) from the fitted energy model.
func BenchmarkFig7REPBTable(b *testing.B) {
	var maxRelErr float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		maxRelErr = 0
		for _, row := range rows {
			for _, c := range row.Cells {
				rel := (c.ModelREPB - c.PublishedREPB) / c.PublishedREPB
				if rel < 0 {
					rel = -rel
				}
				if rel > maxRelErr {
					maxRelErr = rel
				}
			}
		}
	}
	b.ReportMetric(maxRelErr*100, "max-err-%")
}

// BenchmarkFig8ThroughputVsRange regenerates throughput vs range for
// 32 µs and 96 µs tag preambles (paper Fig. 8).
func BenchmarkFig8ThroughputVsRange(b *testing.B) {
	var at1m, at5m float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8(experiments.QuickOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.DistanceM {
			case 1:
				at1m = r.Best32Bps
			case 5:
				at5m = r.Best32Bps
			}
		}
	}
	b.ReportMetric(at1m/1e6, "Mbps@1m")
	b.ReportMetric(at5m/1e6, "Mbps@5m")
}

// BenchmarkFig8Sequential is BenchmarkFig8ThroughputVsRange pinned to
// Workers=1, the historical sequential engine. Comparing the two wall
// clocks shows the parallel engine's speedup on multi-core hosts; the
// reported metrics are identical by construction (every trial seeds
// from its index and results reduce in index order).
func BenchmarkFig8Sequential(b *testing.B) {
	opt := experiments.QuickOptions()
	opt.Workers = 1
	var at1m float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8(opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.DistanceM == 1 {
				at1m = r.Best32Bps
			}
		}
	}
	b.ReportMetric(at1m/1e6, "Mbps@1m")
}

// BenchmarkFig9REPBVsThroughput regenerates the per-range REPB
// frontiers (paper Fig. 9).
func BenchmarkFig9REPBVsThroughput(b *testing.B) {
	var cutoff05, cutoff5 float64
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Fig9(experiments.QuickOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range curves {
			switch c.DistanceM {
			case 0.5:
				cutoff05 = c.MaxThroughputBps()
			case 5:
				cutoff5 = c.MaxThroughputBps()
			}
		}
	}
	b.ReportMetric(cutoff05/1e6, "cutoff-Mbps@0.5m")
	b.ReportMetric(cutoff5/1e6, "cutoff-Mbps@5m")
}

// BenchmarkFig10REPBVsRange regenerates REPB vs range at the fixed
// 1.25 and 5 Mbps targets (paper Fig. 10).
func BenchmarkFig10REPBVsRange(b *testing.B) {
	var repb125 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(experiments.QuickOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.TargetBps == 1.25e6 && r.DistanceM == 2 && r.Achieved {
				repb125 = r.REPB
			}
		}
	}
	b.ReportMetric(repb125, "REPB@1.25Mbps,2m")
}

// BenchmarkFig11aCancellation regenerates the measured-vs-expected SNR
// scatter (paper Fig. 11a).
func BenchmarkFig11aCancellation(b *testing.B) {
	var med float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11a(10, 3, experiments.QuickOptions())
		if err != nil {
			b.Fatal(err)
		}
		med = res.MedianDegradationDB
	}
	b.ReportMetric(med, "median-degr-dB")
}

// BenchmarkFig11bMRCGain regenerates the BER-vs-symbol-rate waterfall
// (paper Fig. 11b).
func BenchmarkFig11bMRCGain(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11b(experiments.QuickOptions())
		if err != nil {
			b.Fatal(err)
		}
		var hi, lo float64
		for _, r := range rows {
			if r.Mod.String() != "QPSK" {
				continue
			}
			if r.SymbolRateHz == 2.5e6 {
				hi = r.MeanSNRdB
			}
			if r.SymbolRateHz == 100e3 {
				lo = r.MeanSNRdB
			}
		}
		gain = lo - hi
	}
	b.ReportMetric(gain, "MRC-gain-dB")
}

// BenchmarkFig12aLoadedNetwork regenerates the loaded-network
// throughput CDF (paper Fig. 12a).
func BenchmarkFig12aLoadedNetwork(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12a(20, experiments.QuickOptions())
		if err != nil {
			b.Fatal(err)
		}
		frac = res.FractionOfOptimal()
	}
	b.ReportMetric(frac*100, "median-%-of-optimal")
}

// BenchmarkFig12bWiFiImpact regenerates WiFi network throughput vs tag
// distance (paper Fig. 12b).
func BenchmarkFig12bWiFiImpact(b *testing.B) {
	var nearDrop float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12b(2, experiments.QuickOptions())
		if err != nil {
			b.Fatal(err)
		}
		nearDrop = rows[0].DropFraction
	}
	b.ReportMetric(nearDrop*100, "drop-%@0.25m")
}

// BenchmarkFig13aWorstCase regenerates the per-bitrate worst-case
// client micro-benchmark (paper Figs. 13a/13b).
func BenchmarkFig13aWorstCase(b *testing.B) {
	var degr54 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13(experiments.QuickOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.WiFiMbps == 54 {
				degr54 = r.Result.SNRDegradationDB()
			}
		}
	}
	b.ReportMetric(degr54, "SNR-degr-dB@54Mbps")
}

// BenchmarkHeadlineVsPrior regenerates the abstract-level comparison
// against the prior WiFi backscatter system.
func BenchmarkHeadlineVsPrior(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		h, err := experiments.Headline(experiments.QuickOptions())
		if err != nil {
			b.Fatal(err)
		}
		speedup = h.SpeedupAt1m()
	}
	b.ReportMetric(speedup, "speedup-x")
}

// BenchmarkLinkPacket times one end-to-end packet exchange at 1 m —
// the simulator's unit of work.
func BenchmarkLinkPacket(b *testing.B) {
	cfg := DefaultLinkConfig(1)
	link, err := NewLink(cfg)
	if err != nil {
		b.Fatal(err)
	}
	payload := link.RandomPayload(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := link.RunPacket(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations times the design-choice ablation suite (analog
// stage, preamble length, TX EVM, coding).
func BenchmarkAblations(b *testing.B) {
	var analogGain float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablations(experiments.QuickOptions())
		if err != nil {
			b.Fatal(err)
		}
		var full, digOnly float64
		for _, r := range rows {
			if r.Study == "analog cancellation stage" {
				if r.Variant == "digital-only" {
					digOnly = r.MeanSNRdB
				} else {
					full = r.MeanSNRdB
				}
			}
		}
		analogGain = full - digOnly
	}
	b.ReportMetric(analogGain, "analog-stage-dB")
}

// BenchmarkRobustness times the impairment-severity sweep (DESIGN.md
// §5d) and reports how much of the QPSK link survives the harshest
// modeled front end.
func BenchmarkRobustness(b *testing.B) {
	var qpskAtOne float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Robustness(experiments.QuickOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Severity == 1 && r.Mod.String() == "QPSK" {
				qpskAtOne = r.SuccessRate
			}
		}
	}
	b.ReportMetric(qpskAtOne, "QPSK-success@sev1")
}
