package backfi

import "testing"

func TestFacadeEndToEnd(t *testing.T) {
	link, err := NewLink(DefaultLinkConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := link.RunPacket(link.RandomPayload(64))
	if err != nil {
		t.Fatal(err)
	}
	if !res.PayloadOK {
		t.Fatal("facade link should decode at 1 m")
	}
}

func TestFacadeEnergyModel(t *testing.T) {
	repb, err := REPB(BPSK, Rate12, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if repb < 0.99 || repb > 1.01 {
		t.Fatalf("reference REPB %v", repb)
	}
	epb, err := EPB(PSK16, Rate23, 2.5e6)
	if err != nil {
		t.Fatal(err)
	}
	if epb <= 0 {
		t.Fatalf("EPB %v", epb)
	}
}

func TestFacadeSweepAndSelection(t *testing.T) {
	cfgs := StandardConfigs(DefaultPreambleChips, 1)
	if len(cfgs) != 36 {
		t.Fatalf("%d configs", len(cfgs))
	}
	// Evaluate a small subset through the facade.
	subset := []TagConfig{cfgs[18], cfgs[20]} // 1 MHz BPSK/QPSK entries
	results, err := Sweep(DefaultChannelConfig(1), subset, 3, 16, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := BestThroughput(results); !ok {
		t.Fatal("no decodable config at 1 m")
	}
	if _, ok := MinREPBAtThroughput(results, 1e3); !ok {
		t.Fatal("nothing achieves 1 kbps?!")
	}
}

func TestFacadeEvaluate(t *testing.T) {
	tc := TagConfig{Mod: QPSK, Coding: Rate12, SymbolRateHz: 1e6, PreambleChips: DefaultPreambleChips, ID: 1}
	f, err := Evaluate(DefaultChannelConfig(1), tc, 3, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Decodable() {
		t.Fatalf("success rate %v", f.SuccessRate)
	}
}

func TestFacadeObservability(t *testing.T) {
	reg := NewMetricsRegistry()
	cfg := DefaultLinkConfig(1)
	cfg.Obs = reg
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := link.RunPacket(link.RandomPayload(64))
	if err != nil {
		t.Fatal(err)
	}
	// Satellite diagnostics lifted onto the result.
	if res.SICCancellationDB <= 0 || res.SICResidualDBm >= res.SICBeforeDBm {
		t.Fatalf("SIC diagnostics not lifted: before=%.1f after=%.1f depth=%.1f",
			res.SICBeforeDBm, res.SICResidualDBm, res.SICCancellationDB)
	}
	if res.PreambleCorr <= 0 {
		t.Fatalf("preamble correlation not lifted: %v", res.PreambleCorr)
	}
	snap := reg.Snapshot()
	if snap.Counter("backfi_packets_total", "") != 1 {
		t.Fatalf("packet counter = %d, want 1", snap.Counter("backfi_packets_total", ""))
	}
	if h, ok := snap.Histogram("backfi_sic_residual_db", ""); !ok || h.Count == 0 {
		t.Fatal("SIC residual histogram missing after an instrumented packet")
	}
	if h, ok := snap.Histogram("backfi_stage_duration_seconds", `{stage="mrc"}`); !ok || h.Count == 0 {
		t.Fatal("MRC stage-duration histogram missing after an instrumented packet")
	}
}
