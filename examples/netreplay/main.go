// Netreplay: BackFi under realistic WiFi load (paper Sec. 6.3).
//
// The tag can only backscatter while its AP is transmitting. This
// example generates loaded-AP airtime traces across a range of network
// loads, replays them against the BackFi link-layer overhead, and
// prints the throughput CDF — the experiment behind the paper's
// "median 4 Mbps ≈ 80% of the 5 Mbps optimum" claim (Fig. 12a).
//
// Run: go run ./examples/netreplay
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"backfi/internal/mac"
)

func main() {
	log.SetFlags(0)

	fmt.Println("BackFi under loaded WiFi networks (trace replay)")
	fmt.Println("------------------------------------------------")

	r := rand.New(rand.NewSource(7))
	opp := mac.DefaultOpportunityConfig() // 5 Mbps optimum at 1 m, per-burst protocol overhead

	const numAPs = 20
	type apRow struct {
		airtime float64
		bps     float64
	}
	rows := make([]apRow, 0, numAPs)
	for ap := 0; ap < numAPs; ap++ {
		air := 0.55 + 0.4*r.Float64() // heavily loaded: 55–95% AP airtime
		cfg := mac.DefaultTraceConfig(air)
		cfg.HorizonSec = 5
		tr, err := mac.Generate(cfg, r)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, apRow{airtime: tr.AirtimeFraction(), bps: mac.Throughput(tr, opp)})
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].bps < rows[j].bps })
	fmt.Println("  CDF    AP airtime   BackFi throughput")
	for i, row := range rows {
		fmt.Printf("  %.2f   %5.1f%%       %.2f Mbps\n",
			float64(i+1)/float64(len(rows)), row.airtime*100, row.bps/1e6)
	}

	median := rows[len(rows)/2].bps
	fmt.Println()
	fmt.Printf("median: %.2f Mbps = %.0f%% of the %.1f Mbps continuously-excited optimum\n",
		median/1e6, median/opp.LinkBps*100, opp.LinkBps/1e6)
	fmt.Println("(an idle AP can always create opportunities by sending dummy packets;")
	fmt.Println(" the loaded case above is the interesting one — paper Sec. 6.3)")
}
