// Quickstart: one BackFi packet exchange at 1 m, printed step by step.
//
// An AP transmits a WiFi packet to a normal client; the tag reflects a
// phase-modulated copy carrying its own payload; the AP cancels its
// self-interference and decodes the tag data with MRC — all while the
// WiFi packet itself remains intact.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"backfi"
)

func main() {
	log.SetFlags(0)

	// 1. Configure the link: tag 1 m from the AP, QPSK at 1 Msym/s
	//    with a rate-1/2 convolutional code → a 1 Mbps uplink.
	cfg := backfi.DefaultLinkConfig(1.0)
	cfg.Seed = 42

	link, err := backfi.NewLink(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The IoT sensor has collected some data to upload.
	payload := []byte("temperature=21.5C humidity=40% battery=harvested")

	// 3. Run the exchange: wake preamble → WiFi packet → silent period
	//    → tag preamble → backscattered payload → MRC decode.
	res, err := link.RunPacket(payload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("BackFi quickstart")
	fmt.Println("-----------------")
	fmt.Printf("tag config:          %v (%.2f Mbps)\n", cfg.Tag, cfg.Tag.BitRate()/1e6)
	fmt.Printf("excitation length:   %.2f ms of WiFi airtime\n", float64(res.ExcitationSamples)/20e3)
	fmt.Printf("self-interference:   %.1f dBm before, %.1f dBm after cancellation\n",
		res.Decode.SIC.BeforeDBm, res.Decode.SIC.AfterDBm)
	fmt.Printf("post-MRC symbol SNR: %.1f dB (oracle prediction %.1f dB)\n",
		res.MeasuredSNRdB, res.ExpectedMRCSNRdB)
	fmt.Printf("decoded OK:          %v\n", res.PayloadOK)
	fmt.Printf("payload:             %q\n", string(res.Decode.Payload))

	// 4. The energy cost of this configuration, from the paper's
	//    Fig. 7 model.
	repb, err := backfi.REPB(cfg.Tag.Mod, cfg.Tag.Coding, cfg.Tag.SymbolRateHz)
	if err != nil {
		log.Fatal(err)
	}
	epb, _ := backfi.EPB(cfg.Tag.Mod, cfg.Tag.Coding, cfg.Tag.SymbolRateHz)
	fmt.Printf("energy cost:         %.2f× the reference config (%.2f pJ/bit)\n", repb, epb*1e12)
}
