// Duplex: the full BackFi control loop, both directions.
//
// Downlink (paper Sec. 5.2.1): the AP on-off-keys a ~20 kbps command
// that the tag's envelope detector demodulates — here, a rate-change
// order. Uplink: the tag applies the new configuration and
// backscatters its data. The example then repeats the uplink with a
// 4-antenna AP (the paper's Sec. 7 extension) to show the diversity
// gain.
//
// Run: go run ./examples/duplex
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"backfi"
	"backfi/internal/channel"
	"backfi/internal/dsp"
	"backfi/internal/tag"
)

func main() {
	log.SetFlags(0)
	const distance = 3.0

	fmt.Println("BackFi duplex control loop (tag at 3 m)")
	fmt.Println("---------------------------------------")

	// --- Downlink: AP → tag command over the OOK channel.
	command := "set mod=qpsk coding=1/2 symrate=1e6"
	txAmp := math.Sqrt(dsp.UnDBm(20))
	wave, err := tag.EncodeDownlink([]byte(command), txAmp)
	if err != nil {
		log.Fatal(err)
	}
	// One-way path to the tag at the calibrated backscatter exponent.
	pl := channel.LogDistancePLdB(distance, channel.DefaultCarrierHz, 1.05, 1)
	atTag := dsp.Scale(wave, complex(math.Sqrt(dsp.UnDB(-pl)), 0))
	got, err := tag.DecodeDownlink(atTag, dsp.UnDBm(-41))
	if err != nil {
		log.Fatalf("downlink failed: %v", err)
	}
	fmt.Printf("downlink command (%.0f kbps OOK): %q\n", tag.DownlinkRateBps/1e3, string(got))

	// --- Tag applies the command.
	tcfg := parseCommand(string(got))
	fmt.Printf("tag reconfigured: %v (%.2f Mbps)\n\n", tcfg, tcfg.BitRate()/1e6)

	// --- Uplink with a single-antenna AP.
	cfg := backfi.DefaultLinkConfig(distance)
	cfg.Tag = tcfg
	cfg.Seed = 21
	link, err := backfi.NewLink(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := link.RunPacket([]byte("telemetry after reconfig: 48 readings"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uplink (1 antenna):  ok=%v SNR=%.1f dB\n", res.PayloadOK, res.MeasuredSNRdB)

	// --- Uplink with a 4-antenna AP (Sec. 7 extension).
	mimo, err := backfi.NewMIMOLink(cfg, 4)
	if err != nil {
		log.Fatal(err)
	}
	mres, err := mimo.RunPacket([]byte("telemetry after reconfig: 48 readings"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uplink (4 antennas): ok=%v SNR=%.1f dB (per antenna:", mres.PayloadOK, mres.JointSNRdB)
	for _, s := range mres.PerAntennaSNRdB {
		fmt.Printf(" %.1f", s)
	}
	fmt.Println(" dB)")
	fmt.Printf("spatial diversity gain: %.1f dB over the mean single chain\n",
		mres.JointSNRdB-mean(mres.PerAntennaSNRdB))
}

// parseCommand applies a "set k=v ..." command to a tag configuration.
func parseCommand(cmd string) backfi.TagConfig {
	tcfg := backfi.TagConfig{
		Mod: backfi.BPSK, Coding: backfi.Rate12, SymbolRateHz: 500e3,
		PreambleChips: backfi.DefaultPreambleChips, ID: 1,
	}
	for _, field := range strings.Fields(cmd) {
		kv := strings.SplitN(field, "=", 2)
		if len(kv) != 2 {
			continue
		}
		switch kv[0] {
		case "mod":
			switch kv[1] {
			case "bpsk":
				tcfg.Mod = backfi.BPSK
			case "qpsk":
				tcfg.Mod = backfi.QPSK
			case "16psk":
				tcfg.Mod = backfi.PSK16
			}
		case "coding":
			if kv[1] == "2/3" {
				tcfg.Coding = backfi.Rate23
			}
		case "symrate":
			var v float64
			fmt.Sscanf(kv[1], "%g", &v)
			if v > 0 {
				tcfg.SymbolRateHz = v
			}
		}
	}
	return tcfg
}

func mean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
