// Audiostream: a battery-free security microphone at 5 m streaming
// ~1 Mbps over BackFi — the paper's high-end workload (requirement R1:
// "security microphones/cameras recording audio/video" at a few Mbps
// and 1–5 m of range).
//
// The example first runs the paper's rate adaptation (sweep the Fig. 7
// configurations, keep decodable ones, prefer minimum energy per bit at
// the target rate), then streams audio frames with the chosen config
// and reports goodput and energy.
//
// Run: go run ./examples/audiostream
package main

import (
	"fmt"
	"log"

	"backfi"
)

func main() {
	log.SetFlags(0)

	const distance = 5.0  // meters — the paper's headline range point
	const targetBps = 1e6 // 1 Mbps audio stream

	fmt.Printf("BackFi audio stream: microphone at %.0f m, target %.1f Mbps\n", distance, targetBps/1e6)
	fmt.Println("--------------------------------------------------------")

	// 1. Rate adaptation: evaluate the candidate configurations at this
	//    range. (The full 36-config sweep works too; the subset keeps
	//    the example fast.)
	candidates := []backfi.TagConfig{
		{Mod: backfi.PSK16, Coding: backfi.Rate12, SymbolRateHz: 500e3, PreambleChips: 32, ID: 1},
		{Mod: backfi.QPSK, Coding: backfi.Rate23, SymbolRateHz: 1e6, PreambleChips: 32, ID: 1},
		{Mod: backfi.QPSK, Coding: backfi.Rate12, SymbolRateHz: 1e6, PreambleChips: 32, ID: 1},
		{Mod: backfi.QPSK, Coding: backfi.Rate12, SymbolRateHz: 2e6, PreambleChips: 32, ID: 1},
		{Mod: backfi.BPSK, Coding: backfi.Rate23, SymbolRateHz: 2e6, PreambleChips: 32, ID: 1},
	}
	results, err := backfi.Sweep(backfi.DefaultChannelConfig(distance), candidates, 6, 256, 7)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range results {
		fmt.Printf("  candidate %-24v %.2f Mbps  success %.0f%%  REPB %.2f\n",
			f.Cfg, f.ThroughputBps/1e6, f.SuccessRate*100, f.REPB)
	}
	chosen, ok := backfi.MinREPBAtThroughput(results, targetBps)
	if !ok {
		log.Fatalf("no configuration sustains %.1f Mbps at %.0f m", targetBps/1e6, distance)
	}
	fmt.Printf("chosen: %v (%.2f Mbps at REPB %.2f)\n\n", chosen.Cfg, chosen.ThroughputBps/1e6, chosen.REPB)

	// 2. Stream 10 audio frames of 1 KB each (≈8 ms of 1 Mbps audio per
	//    frame) over a Session: one placement whose channels evolve
	//    slowly between packets, with stop-and-wait ARQ (2 retries).
	cfg := backfi.DefaultLinkConfig(distance)
	cfg.Tag = chosen.Cfg
	cfg.Seed = 1000
	session, err := backfi.NewSession(cfg, 0.95, 2)
	if err != nil {
		log.Fatal(err)
	}
	const frames = 10
	for fr := 0; fr < frames; fr++ {
		frame := make([]byte, 1024)
		for i := range frame {
			frame[i] = byte(fr + i) // stand-in for ADPCM audio
		}
		res, ok, err := session.Send(frame)
		if err != nil {
			fmt.Printf("  frame %d: link error: %v\n", fr, err)
			continue
		}
		fmt.Printf("  frame %d: ok=%v SNR=%.1f dB rawBER=%.1e\n", fr, ok, res.MeasuredSNRdB, res.RawBER())
	}

	st := session.Stats
	fmt.Println()
	fmt.Printf("frames delivered: %d/%d (%d retransmissions)\n",
		st.FramesDelivered, st.FramesOffered, st.Retries())
	if st.AirtimeSec > 0 {
		fmt.Printf("goodput over tag airtime: %.2f Mbps (config rate %.2f Mbps)\n",
			st.GoodputBps()/1e6, chosen.ThroughputBps/1e6)
	}
	epb, _ := backfi.EPB(chosen.Cfg.Mod, chosen.Cfg.Coding, chosen.Cfg.SymbolRateHz)
	fmt.Printf("tag energy: %.2f pJ/bit → %.2f µW while streaming at %.2f Mbps\n",
		epb*1e12, epb*chosen.ThroughputBps*1e6, chosen.ThroughputBps/1e6)
}
