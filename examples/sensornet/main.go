// Sensornet: a fleet of low-rate sensor tags sharing one BackFi AP.
//
// Each tag has its own 16-bit wake sequence, so the AP can address one
// tag per excitation packet (paper Sec. 4.1). The AP polls the fleet
// round-robin; every tag uploads a small telemetry frame, and the
// example tracks per-tag delivery and the fleet's aggregate rate —
// the "temperature sensors measuring every 100 ms" workload from the
// paper's introduction (requirement R1's low end).
//
// Run: go run ./examples/sensornet
package main

import (
	"fmt"
	"log"

	"backfi"
)

// sensorReading is the telemetry each tag uploads.
type sensorReading struct {
	tagID int
	data  []byte
}

func main() {
	log.SetFlags(0)

	const numTags = 8
	const rounds = 3

	fmt.Println("BackFi sensor fleet: 8 tags, round-robin polling")
	fmt.Println("------------------------------------------------")

	delivered := 0
	var totalBits, totalAirtime float64
	for round := 0; round < rounds; round++ {
		for id := 0; id < numTags; id++ {
			// Tags sit at different ranges; farther tags get a more
			// robust configuration (the min-REPB policy would pick
			// these automatically; here they are fixed per tag).
			distance := 0.5 + float64(id)*0.6 // 0.5 m … 4.7 m
			tcfg := backfi.TagConfig{
				Mod:           backfi.QPSK,
				Coding:        backfi.Rate12,
				SymbolRateHz:  1e6,
				PreambleChips: backfi.DefaultPreambleChips,
				ID:            id,
			}
			if distance > 3 {
				tcfg.Mod = backfi.BPSK // more margin at the fleet edge
			}

			cfg := backfi.DefaultLinkConfig(distance)
			cfg.Tag = tcfg
			cfg.Seed = int64(round*100 + id)
			link, err := backfi.NewLink(cfg)
			if err != nil {
				log.Fatal(err)
			}

			reading := sensorReading{
				tagID: id,
				data:  []byte(fmt.Sprintf("tag%02d round%d temp=%d.%dC", id, round, 19+id%5, id%10)),
			}
			res, err := link.RunPacket(reading.data)
			if err != nil {
				fmt.Printf("  round %d tag %02d (%.1f m): no wake/decode (%v)\n", round, id, distance, err)
				continue
			}
			status := "FAIL"
			if res.PayloadOK {
				status = "ok"
				delivered++
				totalBits += float64(8 * len(reading.data))
			}
			totalAirtime += res.TagAirtimeSec
			fmt.Printf("  round %d tag %02d (%.1f m, %v): %-4s SNR=%.1f dB\n",
				round, id, distance, tcfg.Mod, status, res.MeasuredSNRdB)
		}
	}

	fmt.Println()
	fmt.Printf("delivered %d/%d readings\n", delivered, numTags*rounds)
	if totalAirtime > 0 {
		fmt.Printf("aggregate goodput over tag airtime: %.1f kbps\n", totalBits/totalAirtime/1e3)
	}
}
